//! Experiment configuration and the run loop producing the paper's data
//! rows.

use crate::actor::{Actor, Client};
use crate::byzantine::ByzantineSchedule;
use crate::chaos_schedule::ChaosSchedule;
use crate::fault_schedule::FaultSchedule;
use crate::metrics::LatencySummary;
use crate::safety::SafetyChecker;
use crate::sink::MetricsSink;
use crate::workload::Workload;
use hammerhead::{HammerheadConfig, ScheduleConfig, Validator, ValidatorConfig};
use hh_consensus::SchedulePolicy;
use hh_crypto::Digest;
use hh_net::{
    Duration, GeoLatency, LatencyModel, NetworkConfig, NodeId, Region, SimTime, Simulator,
    REGION_COUNT,
};
use hh_storage::MemBackend;
use hh_types::{Committee, ValidatorId};

/// Which system a run benchmarks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SystemKind {
    /// Baseline: Bullshark with static stake-weighted round-robin.
    Bullshark,
    /// HammerHead reputation scheduling.
    Hammerhead,
}

impl SystemKind {
    /// Label used in CSV output.
    pub fn label(self) -> &'static str {
        match self {
            SystemKind::Bullshark => "bullshark",
            SystemKind::Hammerhead => "hammerhead",
        }
    }
}

/// Full description of one benchmark run.
#[derive(Clone, Debug)]
pub struct ExperimentConfig {
    /// Number of validators (equal stake).
    pub committee_size: usize,
    /// System under test.
    pub system: SystemKind,
    /// HammerHead parameters (used when `system` is Hammerhead).
    pub hammerhead: HammerheadConfig,
    /// Total offered load, transactions per second, split across one
    /// client per live validator.
    pub load_tps: u64,
    /// The workload shape the clients execute: arrival-process timeline,
    /// open- vs closed-loop submission, modeled payload size, per-client
    /// heterogeneity. [`Workload::constant`] (the default) reproduces
    /// the historical fixed-rate windowed client bit for bit.
    pub workload: Workload,
    /// Overrides the proposer's block byte bound
    /// ([`hammerhead::ValidatorConfig::max_block_bytes`]); `None` keeps
    /// the validator config's value (unbounded by default).
    pub max_block_bytes: Option<usize>,
    /// Measured run length (simulated seconds).
    pub duration_secs: u64,
    /// Initial window excluded from latency statistics.
    pub warmup_secs: u64,
    /// The fault schedule: crashes, recoveries, slowdowns, partitions.
    pub faults: FaultSchedule,
    /// The byzantine schedule: strategic adversaries (equivocation, vote
    /// withholding, lazy leadership, flip-flopping) attacking the
    /// reputation mechanism. Empty by default — and an empty schedule
    /// changes nothing about the run, bit for bit.
    pub byzantine: ByzantineSchedule,
    /// The chaos schedule: per-window message drop, duplication,
    /// corruption and reordering on selected links (adverse-network
    /// model). Empty by default — and an empty schedule draws no
    /// randomness, so it changes nothing about the run, bit for bit.
    pub chaos: ChaosSchedule,
    /// Use the 13-region AWS latency matrix (`true`, the paper's setting)
    /// or a flat network (`false`, fast unit tests).
    pub geo: bool,
    /// One-way delay of every link when `geo` is `false`, in milliseconds.
    pub flat_latency_ms: u64,
    /// Validator protocol parameters. `None` derives the paper-calibrated
    /// defaults (see [`ExperimentConfig::derive_validator_config`]).
    pub validator_config: Option<ValidatorConfig>,
    /// Overrides the schedule derived from [`ExperimentConfig::system`]
    /// (used by ablations running e.g. a static leader).
    pub schedule_override: Option<ScheduleConfig>,
    /// Client in-flight window, expressed in seconds of offered rate
    /// (window = per-client rate × this). Models the bounded concurrency of
    /// real benchmark drivers; see [`crate::Client`].
    pub client_window_secs: f64,
    /// Global Stabilization Time in seconds. Before it the simulated
    /// adversary adds arbitrary bounded delays and defers a fraction of
    /// messages (§2.1's partial synchrony); 0 = synchronous from the start
    /// (the benchmark setting).
    pub gst_secs: u64,
    /// Simulation seed (identical seeds reproduce identical runs).
    pub seed: u64,
}

impl ExperimentConfig {
    /// The paper's benchmark shape: geo network, 60 simulated seconds
    /// (scaled down from the paper's 10 minutes), 10-second warmup,
    /// schedule recomputed every ~10 commits, bottom-f exclusion.
    pub fn paper(system: SystemKind, committee_size: usize, load_tps: u64) -> Self {
        ExperimentConfig {
            committee_size,
            system,
            hammerhead: HammerheadConfig::default(),
            load_tps,
            workload: Workload::constant(),
            max_block_bytes: None,
            duration_secs: 60,
            warmup_secs: 10,
            faults: FaultSchedule::default(),
            byzantine: ByzantineSchedule::default(),
            chaos: ChaosSchedule::default(),
            geo: true,
            flat_latency_ms: 5,
            validator_config: None,
            schedule_override: None,
            client_window_secs: 2.0,
            gst_secs: 0,
            seed: 42,
        }
    }

    /// A small, fast configuration for unit tests: 4 validators, flat
    /// network, aggressive timeouts, 3 simulated seconds.
    pub fn quick_test(system: SystemKind) -> Self {
        ExperimentConfig {
            committee_size: 4,
            system,
            hammerhead: HammerheadConfig { period_rounds: 8, ..HammerheadConfig::default() },
            load_tps: 200,
            workload: Workload::constant(),
            max_block_bytes: None,
            duration_secs: 3,
            warmup_secs: 0,
            faults: FaultSchedule::default(),
            byzantine: ByzantineSchedule::default(),
            chaos: ChaosSchedule::default(),
            geo: false,
            flat_latency_ms: 5,
            validator_config: Some(ValidatorConfig {
                min_round_delay_us: 20_000,
                leader_timeout_us: 150_000,
                sync_tick_us: 100_000,
                ..ValidatorConfig::default()
            }),
            schedule_override: None,
            client_window_secs: 10.0,
            gst_secs: 0,
            seed: 42,
        }
    }

    /// The validator configuration this experiment runs, either the
    /// explicit override or the derived paper calibration.
    ///
    /// Calibration notes (`DESIGN.md` §2): the execution drain rate models
    /// the Sui execution pipeline and carries a mild committee-size
    /// penalty, `4200 − 7·n` tps, reproducing the paper's observed peaks
    /// (≈4k tx/s at 10–50 validators, ≈3.5k at 100).
    pub fn derive_validator_config(&self) -> ValidatorConfig {
        let mut config = self.validator_config.clone().unwrap_or_default();
        if self.validator_config.is_none() {
            config.exec_rate_tps = 4_200u64.saturating_sub(7 * self.committee_size as u64).max(500);
        }
        config.schedule = match &self.schedule_override {
            Some(schedule) => schedule.clone(),
            None => match self.system {
                SystemKind::Bullshark => ScheduleConfig::RoundRobin,
                SystemKind::Hammerhead => ScheduleConfig::Hammerhead(self.hammerhead.clone()),
            },
        };
        if let Some(bytes) = self.max_block_bytes {
            config.max_block_bytes = bytes;
        }
        config
    }
}

/// Measurements from one run.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Distinct transactions reaching execution finality, divided by the
    /// run duration (the paper's throughput metric).
    pub throughput_tps: f64,
    /// Distinct transactions reaching execution finality (the numerator
    /// of `throughput_tps`).
    pub executed: u64,
    /// End-to-end latency (submission → execution finality), post-warmup.
    pub latency: LatencySummary,
    /// Submission → consensus commit latency, post-warmup.
    pub commit_latency: LatencySummary,
    /// Highest commit count across live validators.
    pub commits: u64,
    /// Sum of leader-await timeouts across live validators.
    pub leader_timeouts: u64,
    /// Total transactions submitted by clients.
    pub submitted: u64,
    /// Client ticks skipped with a full in-flight window (latency-throttled
    /// demand; the Little's-law effect behind Fig. 2's throughput loss).
    pub client_skipped: u64,
    /// Transactions shed by full pools (backpressure).
    pub shed: u64,
    /// Modeled wire bytes submitted by clients.
    pub bytes_submitted: u64,
    /// Modeled wire bytes reaching execution finality (byte goodput).
    pub bytes_committed: u64,
    /// The measured window in seconds (actual stop time — shorter than
    /// `duration_secs` for round-limited runs).
    pub elapsed_secs: f64,
    /// Highest HammerHead epoch reached (0 for the baseline).
    pub schedule_epochs: u64,
    /// Restarts executed across live validators (crash-recovery runs).
    pub restarts: u64,
    /// Whether any live validator's post-restart recomputation diverged
    /// from its last durable checkpoint (should never happen; the WAL
    /// replay tripwire).
    pub recovery_divergence: bool,
    /// All live validators' commit sequences are prefix-consistent
    /// (Total Order audit — checked on every run).
    pub agreement_ok: bool,
    /// Commit chain hash of the most advanced validator.
    pub chain_hash: Digest,
    /// Frames dropped by chaos windows.
    pub chaos_dropped: u64,
    /// Frames delivered twice by chaos windows.
    pub chaos_duplicated: u64,
    /// Corrupted frames rejected at decode (the CRC trailer or the codec
    /// caught the flip — the only acceptable fate of a corrupt frame).
    pub chaos_corrupt_rejected: u64,
    /// Frames delayed by chaos reorder windows.
    pub chaos_reordered: u64,
    /// RBC retransmissions across live validators: adaptive sync
    /// re-requests plus uncertified proposal rebroadcasts.
    pub rbc_retransmits: u64,
    /// Commit records audited by the always-on [`SafetyChecker`].
    pub safety_records: u64,
    /// Safety violations detected. Always zero on a returned result —
    /// the drivers abort the run with a diagnostic dump on any
    /// violation — but reported so scenario output can gate on it.
    pub safety_violations: u64,
}

/// The network round observed when a scheduled recovery fired — the
/// baseline the re-inclusion analysis measures from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecoverySample {
    /// The recovered validator.
    pub validator: u16,
    /// Recovery instant (µs).
    pub at_us: u64,
    /// Highest DAG round across validators at that instant.
    pub network_round: u64,
}

/// A built simulation plus its committee, for tests that need to drive the
/// run manually (custom fault timing, bespoke assertions).
pub struct SimHandle {
    /// The underlying simulator; validators occupy ids `0..n_validators`.
    pub sim: Simulator<Actor>,
    /// The committee shared by all validators.
    pub committee: Committee,
    /// Number of validator nodes.
    pub n_validators: usize,
    /// One sample per scheduled recovery, filled as the drivers pass each
    /// recovery instant (empty until then, and for schedules without
    /// recoveries).
    pub recovery_samples: Vec<RecoverySample>,
    /// The always-on safety invariant checker, fed every validator's
    /// commit records by the run drivers. A violation aborts the run
    /// with [`SafetyChecker::diagnostic_dump`].
    pub safety: SafetyChecker,
}

impl SimHandle {
    /// Borrows validator `i`.
    ///
    /// # Panics
    ///
    /// Panics if node `i` is not a validator.
    pub fn validator(&self, i: usize) -> &Validator<hh_storage::MemBackend> {
        self.sim.node(NodeId(i)).as_validator().expect("node is a validator")
    }

    /// Records the network round for every recovery scheduled at exactly
    /// `at_us` (call after the simulator has processed that instant).
    fn sample_recoveries(&mut self, config: &ExperimentConfig, at_us: u64) {
        let network_round =
            (0..self.n_validators).map(|i| self.validator(i).current_round().0).max().unwrap_or(0);
        for (validator, t) in config.faults.recoveries() {
            if t == at_us {
                self.recovery_samples.push(RecoverySample { validator, at_us, network_round });
            }
        }
    }
}

/// Builds the simulation described by `config` without running it.
///
/// Schedules containing recovery events wire every validator to a
/// WAL-backed [`hh_storage::ValidatorStore`] (over a [`MemBackend`]
/// whose handle survives the crash), so a scheduled recovery replays
/// `Validator::on_restart` from real persisted state instead of
/// restarting empty.
pub fn build_sim(config: &ExperimentConfig) -> SimHandle {
    let n = config.committee_size;
    let committee = Committee::new_equal_stake(n);
    let mut validator_config = config.derive_validator_config();
    if let Err(e) = config.byzantine.validate(n) {
        panic!("invalid byzantine schedule: {e}");
    }
    if let Err(e) = config.chaos.validate(n) {
        panic!("invalid chaos schedule: {e}");
    }
    if config.byzantine.has_equivocation() {
        // Equivocation is only a *detected* attack in certified mode,
        // where honest validators ack one header per (round, author) and
        // the twin can never gather a certificate.
        validator_config.broadcast_mode = hh_rbc::BroadcastMode::Certified;
    }

    // Clients attach to validators that are up at t=0.
    let live: Vec<usize> = config.faults.live_at(n, 0);
    assert!(!live.is_empty(), "at least one live validator required");
    // The scenario layer validates workloads at plan time; programmatic
    // configs get the same up-front rejection here instead of a
    // mid-run surprise.
    if let Err(e) = config.workload.validate() {
        panic!("{e}");
    }
    let persist = config.faults.has_recoveries();

    // Validators at ids 0..n, one client per live validator above them.
    let mut actors: Vec<Actor> = (0..n)
        .map(|i| {
            let id = ValidatorId(i as u16);
            Actor::Validator(
                Box::new(Validator::new(
                    committee.clone(),
                    id,
                    validator_config.clone(),
                    persist.then(MemBackend::new),
                )),
                config.byzantine.behavior_for(id, &committee),
            )
        })
        .collect();
    let rates = config.workload.client_rates(config.load_tps as f64, live.len());
    let duration_us = config.duration_secs.saturating_mul(1_000_000);
    for (k, v) in live.iter().enumerate() {
        if rates[k] > 0.0 {
            actors.push(Actor::Client(Client::with_workload(
                k as u32,
                NodeId(*v),
                rates[k],
                config.client_window_secs,
                config.workload.clone(),
                duration_us,
            )));
        }
    }

    // Latency: validators round-robin over regions; each client co-located
    // with its target validator.
    let latency = if config.geo {
        let mut assignment: Vec<Region> = (0..n).map(|i| Region::ALL[i % REGION_COUNT]).collect();
        for v in &live {
            assignment.push(Region::ALL[*v % REGION_COUNT]);
        }
        LatencyModel::Geo(GeoLatency::with_assignment(assignment))
    } else {
        LatencyModel::Constant(Duration::from_millis(config.flat_latency_ms))
    };

    let net = NetworkConfig {
        latency,
        faults: config.faults.to_plan(),
        chaos: config.chaos.to_plan(n),
        gst: SimTime::from_secs(config.gst_secs),
        ..NetworkConfig::default()
    };
    let sim = Simulator::new(actors, net, config.seed);
    SimHandle {
        sim,
        committee,
        n_validators: n,
        recovery_samples: Vec::new(),
        safety: SafetyChecker::new(),
    }
}

/// Drains every validator's freshly produced commit records into the
/// handle's [`SafetyChecker`] and aborts the run on any violation.
///
/// All validators are drained — crashed ones included: the records a
/// validator committed before its crash are exactly the history a fork
/// would have to contradict.
///
/// # Panics
///
/// Panics with the checker's per-validator diagnostic dump if any
/// safety invariant is violated.
fn audit_safety(handle: &mut SimHandle) {
    for i in 0..handle.n_validators {
        let records = handle
            .sim
            .node_mut(NodeId(i))
            .as_validator_mut()
            .expect("node is a validator")
            .take_commit_records();
        handle.safety.observe_all(i as u16, &records);
    }
    handle.safety.assert_clean();
}

/// When a run stops (see [`run_experiment_limited`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunLimit {
    /// Run for the config's full `duration_secs` of simulated time — the
    /// paper's measurement mode.
    Duration,
    /// Stop as soon as the most advanced live validator passes this DAG
    /// round (or at `duration_secs`, whichever comes first). Smoke-test
    /// mode: "give me 50 rounds of activity" without guessing a duration.
    Rounds(u64),
}

/// Runs the experiment to completion and gathers the paper's metrics.
pub fn run_experiment(config: &ExperimentConfig) -> RunResult {
    run_experiment_limited(config, RunLimit::Duration)
}

/// Runs the experiment until `limit` is hit and gathers the paper's
/// metrics over the actually-elapsed window.
///
/// With [`RunLimit::Rounds`] the simulation advances in quarter-second
/// slices so the stop is prompt; throughput and the measurement window
/// are computed from the real stop time, keeping the metrics comparable
/// across limit modes.
pub fn run_experiment_limited(config: &ExperimentConfig, limit: RunLimit) -> RunResult {
    let (handle, end_us) = run_sim_limited(config, limit);
    collect_metrics(config, &handle, end_us)
}

/// The validator indices the streaming drivers may safely drain mid-run:
/// not crashed at any point through the configured cap, so no record of
/// a validator that later turns out to be crashed-at-stop ever reaches
/// the sink. The metrics collectors use [`FaultSchedule::live_at`] at
/// the *actual* stop time instead — a run stopped before a scheduled
/// crash counts that (never-crashed) validator as live.
fn drainable_validators(config: &ExperimentConfig, n_validators: usize) -> Vec<usize> {
    config.faults.live_at(n_validators, config.duration_secs.saturating_mul(1_000_000))
}

/// The scheduled recovery instants at or below `cap_us`, ascending and
/// deduplicated — extra driver boundaries so the network round can be
/// sampled at exactly each recovery.
fn recovery_times(config: &ExperimentConfig, cap_us: u64) -> Vec<u64> {
    let mut times: Vec<u64> =
        config.faults.recoveries().iter().map(|(_, t)| *t).filter(|t| *t <= cap_us).collect();
    times.sort_unstable();
    times.dedup();
    times
}

/// The next driver stop: the following 250 ms grid point, the next
/// scheduled recovery, or the cap — whichever comes first. Slicing
/// `run_until` never reorders events, so boundary choice cannot change
/// results; it only controls where sampling and draining happen.
fn next_boundary(now_us: u64, cap_us: u64, slice_us: u64, recoveries: &[u64]) -> u64 {
    let grid = ((now_us / slice_us) + 1) * slice_us;
    let recovery = recoveries.iter().copied().find(|t| *t > now_us).unwrap_or(u64::MAX);
    grid.min(recovery).min(cap_us)
}

/// Builds and drives the simulation until `limit`, returning the live
/// handle (for custom post-run analyses) and the stop time in
/// microseconds. Pass both to [`collect_metrics`] for the standard
/// metrics.
///
/// Latency records stay buffered on the validators; for the
/// bounded-memory streaming path use [`run_sim_streaming`].
pub fn run_sim_limited(config: &ExperimentConfig, limit: RunLimit) -> (SimHandle, u64) {
    let mut handle = build_sim(config);
    let cap = SimTime::from_secs(config.duration_secs);
    let cap_us = cap.as_micros();
    let recoveries = recovery_times(config, cap_us);
    let end_us = match limit {
        RunLimit::Duration => {
            // Stop at each recovery instant only to sample the network
            // round; event processing is identical to a single-shot drive.
            for &t in &recoveries {
                handle.sim.run_until(SimTime(t));
                handle.sample_recoveries(config, t);
            }
            handle.sim.run_until(cap);
            audit_safety(&mut handle);
            cap_us
        }
        RunLimit::Rounds(target) => {
            let live = drainable_validators(config, handle.n_validators);
            let slice_us = 250_000u64;
            let mut now_us = 0u64;
            // A recovery at t=0 is a boundary the loop below never
            // visits (it only moves forward from 0).
            if recoveries.first() == Some(&0) {
                handle.sim.run_until(SimTime(0));
                handle.sample_recoveries(config, 0);
            }
            while now_us < cap_us {
                now_us = next_boundary(now_us, cap_us, slice_us, &recoveries);
                handle.sim.run_until(SimTime(now_us));
                if recoveries.binary_search(&now_us).is_ok() {
                    handle.sample_recoveries(config, now_us);
                }
                let best =
                    live.iter().map(|i| handle.validator(*i).current_round().0).max().unwrap_or(0);
                if best >= target {
                    break;
                }
            }
            audit_safety(&mut handle);
            now_us
        }
    };
    (handle, end_us)
}

/// Builds and drives the simulation until `limit`, draining every live
/// validator's latency records into `sink` as they are produced.
///
/// The simulation advances in quarter-second slices; after each slice
/// the freshly produced [`hammerhead::ExecRecord`]s are taken off the
/// validators and fed to the sink, so per-run memory stays bounded by
/// the sink's fixed histograms (plus the small execution backlog)
/// instead of growing with run length × load. Event processing is
/// identical to the single-shot drive — the simulator's event queue is
/// ordered by `(time, seq)` and slicing `run_until` does not reorder it
/// — so results match [`run_sim_limited`] bit for bit.
///
/// Finish with [`collect_streamed_metrics`] to finalize the sink and
/// gather the standard [`RunResult`].
pub fn run_sim_streaming(
    config: &ExperimentConfig,
    limit: RunLimit,
    sink: &mut MetricsSink,
) -> (SimHandle, u64) {
    let mut handle = build_sim(config);
    let cap = SimTime::from_secs(config.duration_secs);
    let cap_us = cap.as_micros();
    let recoveries = recovery_times(config, cap_us);
    let live = drainable_validators(config, handle.n_validators);
    let round_target = match limit {
        RunLimit::Duration => None,
        RunLimit::Rounds(target) => Some(target),
    };
    let slice_us = 250_000u64;
    let mut now_us = 0u64;
    if recoveries.first() == Some(&0) {
        handle.sim.run_until(SimTime(0));
        handle.sample_recoveries(config, 0);
    }
    while now_us < cap_us {
        now_us = next_boundary(now_us, cap_us, slice_us, &recoveries);
        handle.sim.run_until(SimTime(now_us));
        if recoveries.binary_search(&now_us).is_ok() {
            handle.sample_recoveries(config, now_us);
        }
        for &i in &live {
            let records = handle
                .sim
                .node_mut(NodeId(i))
                .as_validator_mut()
                .expect("node is a validator")
                .take_exec_records();
            for rec in &records {
                sink.observe(rec, now_us);
            }
        }
        audit_safety(&mut handle);
        if let Some(target) = round_target {
            let best =
                live.iter().map(|i| handle.validator(*i).current_round().0).max().unwrap_or(0);
            if best >= target {
                break;
            }
        }
    }
    // A run that stopped before a scheduled crash leaves that (healthy)
    // validator outside the conservative drain set; it counts as live at
    // the actual stop, so pick up its buffered records now.
    for i in config.faults.live_at(handle.n_validators, now_us) {
        if !live.contains(&i) {
            let records = handle
                .sim
                .node_mut(NodeId(i))
                .as_validator_mut()
                .expect("node is a validator")
                .take_exec_records();
            for rec in &records {
                sink.observe(rec, now_us);
            }
        }
    }
    audit_safety(&mut handle);
    (handle, now_us)
}

/// Finalizes a sink fed by [`run_sim_streaming`] and gathers the paper's
/// metrics: the record-derived statistics come from the sink, the run
/// counters and the Total Order audit from the live handle.
pub fn collect_streamed_metrics(
    config: &ExperimentConfig,
    handle: &SimHandle,
    end_us: u64,
    sink: &mut MetricsSink,
) -> RunResult {
    sink.finalize(end_us);
    let net_stats = handle.sim.stats();
    // Live at the *actual* stop: a run stopped before a scheduled crash
    // counts that (never-crashed) validator.
    let live = config.faults.live_at(handle.n_validators, end_us);

    let mut commits = 0u64;
    let mut leader_timeouts = 0u64;
    let mut shed = 0u64;
    let mut epochs = 0u64;
    let mut restarts = 0u64;
    let mut recovery_divergence = false;
    let mut rbc_retransmits = 0u64;
    for &i in &live {
        let v = handle.validator(i);
        let m = v.metrics();
        leader_timeouts += m.leader_timeouts;
        shed += m.txs_shed;
        commits = commits.max(v.commit_count());
        restarts += m.restarts;
        recovery_divergence |= m.recovery_divergence;
        rbc_retransmits += v.rbc_retransmits();
        if let Some(p) = v.hammerhead_policy() {
            epochs = epochs.max(p.epoch());
        }
    }

    let mut submitted = 0u64;
    let mut client_skipped = 0u64;
    let mut bytes_submitted = 0u64;
    for i in handle.n_validators..handle.sim.len() {
        if let Some(c) = handle.sim.node(NodeId(i)).as_client() {
            submitted += c.submitted();
            client_skipped += c.skipped();
            bytes_submitted += c.bytes_submitted();
        }
    }

    // Total Order audit: every pair of live validators agrees on the
    // common prefix of committed anchors.
    let mut agreement_ok = true;
    let mut longest: &[hh_types::VertexRef] = &[];
    for &i in &live {
        let anchors = handle.validator(i).committed_anchors();
        if anchors.len() > longest.len() {
            longest = anchors;
        }
    }
    for &i in &live {
        let anchors = handle.validator(i).committed_anchors();
        if anchors != &longest[..anchors.len()] {
            agreement_ok = false;
        }
    }
    let chain_hash = live
        .iter()
        .map(|i| handle.validator(*i))
        .max_by_key(|v| v.commit_count())
        .map(|v| v.chain_hash())
        .unwrap_or(Digest::ZERO);

    RunResult {
        throughput_tps: sink.executed() as f64 / (end_us as f64 / 1e6).max(1e-6),
        executed: sink.executed(),
        latency: sink.latency_summary(),
        commit_latency: sink.commit_latency_summary(),
        commits,
        leader_timeouts,
        submitted,
        client_skipped,
        shed,
        bytes_submitted,
        bytes_committed: sink.executed_bytes(),
        elapsed_secs: end_us as f64 / 1e6,
        schedule_epochs: epochs,
        restarts,
        recovery_divergence,
        agreement_ok,
        chain_hash,
        chaos_dropped: net_stats.chaos_dropped,
        chaos_duplicated: net_stats.chaos_duplicated,
        chaos_corrupt_rejected: net_stats.chaos_corrupt_rejected,
        chaos_reordered: net_stats.chaos_reordered,
        rbc_retransmits,
        safety_records: handle.safety.records_seen(),
        safety_violations: handle.safety.violations().len() as u64,
    }
}

/// Gathers the paper's metrics from a finished run that stopped at
/// `end_us` (as returned by [`run_sim_limited`]).
///
/// This is the post-run convenience over the incremental path: it feeds
/// the records still buffered on the validators through a fresh
/// [`MetricsSink`]. The sink's accumulators are order-independent
/// integers, so the result is identical to streaming the same records
/// during the run.
pub fn collect_metrics(config: &ExperimentConfig, handle: &SimHandle, end_us: u64) -> RunResult {
    let mut sink = MetricsSink::new(config.warmup_secs * 1_000_000);
    for i in config.faults.live_at(handle.n_validators, end_us) {
        for rec in &handle.validator(i).metrics().exec_records {
            sink.observe(rec, end_us);
        }
    }
    collect_streamed_metrics(config, handle, end_us, &mut sink)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_bullshark_run_commits_and_agrees() {
        let config = ExperimentConfig::quick_test(SystemKind::Bullshark);
        let r = run_experiment(&config);
        assert!(r.agreement_ok);
        assert!(r.commits > 10, "commits: {}", r.commits);
        assert!(r.throughput_tps > 50.0, "tps: {}", r.throughput_tps);
        assert!(r.latency.count > 0);
        assert!(r.latency.mean > 0.0 && r.latency.mean < 2.0, "latency: {}", r.latency.mean);
        assert_eq!(r.schedule_epochs, 0, "baseline never rotates");
    }

    #[test]
    fn quick_hammerhead_run_rotates_schedules() {
        let config = ExperimentConfig::quick_test(SystemKind::Hammerhead);
        let r = run_experiment(&config);
        assert!(r.agreement_ok);
        assert!(r.commits > 10);
        assert!(r.schedule_epochs >= 1, "epochs: {}", r.schedule_epochs);
    }

    #[test]
    fn crash_fault_degrades_bullshark_more_than_hammerhead() {
        let mut base = ExperimentConfig::quick_test(SystemKind::Bullshark);
        base.committee_size = 4;
        base.duration_secs = 8;
        base.faults = FaultSchedule::crash_last(4, 1).expect("1 of 4 is a valid crash spec");

        let bullshark = run_experiment(&base);

        let mut hh = base.clone();
        hh.system = SystemKind::Hammerhead;
        hh.hammerhead = HammerheadConfig { period_rounds: 6, ..HammerheadConfig::default() };
        let hammerhead = run_experiment(&hh);

        assert!(bullshark.agreement_ok && hammerhead.agreement_ok);
        // The baseline keeps electing the crashed leader: it must hit
        // strictly more leader timeouts than HammerHead, which rotates the
        // crashed validator out after the first epoch.
        assert!(
            hammerhead.leader_timeouts < bullshark.leader_timeouts,
            "hammerhead {} vs bullshark {}",
            hammerhead.leader_timeouts,
            bullshark.leader_timeouts
        );
        assert!(hammerhead.schedule_epochs >= 1);
    }

    #[test]
    fn rounds_limit_stops_early_with_consistent_metrics() {
        let mut config = ExperimentConfig::quick_test(SystemKind::Bullshark);
        config.duration_secs = 30;
        let r = run_experiment_limited(&config, RunLimit::Rounds(10));
        assert!(r.agreement_ok);
        assert!(r.commits > 0, "should have committed by round 10");
        // A 10-round run at ~20ms/round finishes far before the 30s cap,
        // so the full-duration run commits strictly more.
        let full = run_experiment(&config);
        assert!(full.commits > r.commits, "full {} vs limited {}", full.commits, r.commits);
        assert!(r.throughput_tps > 0.0);
    }

    #[test]
    #[should_panic(expected = "invalid workload")]
    fn build_sim_rejects_unvalidated_workloads_up_front() {
        // A programmatic config can skip the scenario layer; the sim
        // must still refuse a malformed workload at build time instead
        // of underflowing mid-run.
        let mut config = ExperimentConfig::quick_test(SystemKind::Bullshark);
        config.workload.phases = vec![crate::Phase {
            from_us: 5_000_000,
            arrival: crate::Arrival::Constant { scale: 1.0 },
        }];
        build_sim(&config);
    }

    #[test]
    fn crash_last_rejects_oversized_counts_instead_of_panicking() {
        // Regression: `count > committee_size` used to underflow
        // `committee_size - count` and panic in release-unfriendly ways.
        assert!(FaultSchedule::crash_last(4, 5).is_err());
        assert!(FaultSchedule::crash_last(4, 4).is_err(), "crashing everyone is unrunnable too");
        assert!(FaultSchedule::crash_last(0, 0).is_err());
        let ok = FaultSchedule::crash_last(4, 1).expect("valid spec");
        assert_eq!(ok.crashed_nodes(), vec![3]);
    }

    #[test]
    fn mid_run_crash_recovers_via_wal_replay() {
        // One validator crashes mid-run and recovers: the run must wire a
        // WAL-backed store, execute `on_restart`, replay without
        // divergence, and keep Total Order across the whole committee.
        let mut config = ExperimentConfig::quick_test(SystemKind::Hammerhead);
        config.duration_secs = 6;
        config.faults = FaultSchedule::new().crash(3, 1_500_000).recover(3, 3_000_000);
        config.faults.validate(config.committee_size).expect("runnable schedule");

        let (handle, end_us) = run_sim_limited(&config, RunLimit::Duration);
        let r = collect_metrics(&config, &handle, end_us);
        assert!(r.agreement_ok, "recovered validator must stay prefix-consistent");
        assert_eq!(r.restarts, 1, "exactly one restart scheduled");
        assert!(!r.recovery_divergence, "WAL replay must match the checkpoint");
        assert!(r.commits > 10);

        // The recovery instant was sampled with a sensible network round.
        assert_eq!(handle.recovery_samples.len(), 1);
        let sample = handle.recovery_samples[0];
        assert_eq!(sample.validator, 3);
        assert_eq!(sample.at_us, 3_000_000);
        assert!(sample.network_round > 0);

        // The recovered validator kept committing after its restart: its
        // commit count must be close to the most advanced validator's.
        let recovered = handle.validator(3);
        assert_eq!(recovered.metrics().restarts, 1);
        assert!(
            recovered.commit_count() * 2 > r.commits,
            "recovered validator resynced ({} of {} commits)",
            recovered.commit_count(),
            r.commits
        );
    }

    #[test]
    fn partition_buffers_and_heals() {
        // Isolating one validator for a second must not violate safety,
        // and the isolated validator catches back up after the heal.
        let mut config = ExperimentConfig::quick_test(SystemKind::Bullshark);
        config.duration_secs = 6;
        config.faults =
            FaultSchedule::new().partition(vec![0], vec![1, 2, 3], 1_000_000, 2_000_000);
        config.faults.validate(config.committee_size).expect("runnable schedule");
        let r = run_experiment(&config);
        assert!(r.agreement_ok);
        assert!(r.commits > 10, "commits: {}", r.commits);
        assert_eq!(r.restarts, 0);
    }

    #[test]
    fn early_stop_counts_validators_whose_crash_never_happened() {
        // A crash scheduled just before the cap, with a Rounds limit that
        // stops long before it: the validator was healthy for the whole
        // actual run, so it must be counted live — by both collectors,
        // identically.
        let mut config = ExperimentConfig::quick_test(SystemKind::Bullshark);
        config.duration_secs = 30;
        config.faults = FaultSchedule::new().crash(3, 29_000_000);

        let (handle, end_us) = run_sim_limited(&config, RunLimit::Rounds(10));
        assert!(end_us < 29_000_000, "the run stopped before the scheduled crash");
        let buffered = collect_metrics(&config, &handle, end_us);
        // v3's exec records were consumed by the collector — live at stop.
        assert!(!handle.validator(3).committed_anchors().is_empty());

        let mut sink = crate::MetricsSink::new(config.warmup_secs * 1_000_000);
        let (handle2, end_us2) = run_sim_streaming(&config, RunLimit::Rounds(10), &mut sink);
        let streamed = collect_streamed_metrics(&config, &handle2, end_us2, &mut sink);
        assert_eq!(end_us, end_us2);
        assert_eq!(buffered.latency, streamed.latency);
        assert_eq!(buffered.throughput_tps, streamed.throughput_tps);
        assert_eq!(buffered.submitted, streamed.submitted);
        // The late drain picked up v3's buffered records.
        assert!(handle2.validator(3).metrics().exec_records.is_empty());
        assert!(streamed.latency.count > 0);
    }

    #[test]
    fn streaming_matches_buffered_for_recovery_runs() {
        // The extra recovery boundaries in the streaming driver must not
        // change a single metric relative to the buffered path.
        let mut config = ExperimentConfig::quick_test(SystemKind::Hammerhead);
        config.duration_secs = 5;
        config.faults = FaultSchedule::new().crash(2, 1_100_000).recover(2, 2_700_000);

        let (handle, end_us) = run_sim_limited(&config, RunLimit::Duration);
        let buffered = collect_metrics(&config, &handle, end_us);

        let mut sink = crate::MetricsSink::new(config.warmup_secs * 1_000_000);
        let (handle2, end_us2) = run_sim_streaming(&config, RunLimit::Duration, &mut sink);
        let streamed = collect_streamed_metrics(&config, &handle2, end_us2, &mut sink);

        assert_eq!(buffered.chain_hash, streamed.chain_hash);
        assert_eq!(buffered.commits, streamed.commits);
        assert_eq!(buffered.throughput_tps, streamed.throughput_tps);
        assert_eq!(buffered.latency, streamed.latency);
        assert_eq!(buffered.restarts, streamed.restarts);
        assert_eq!(handle.recovery_samples, handle2.recovery_samples);
    }

    #[test]
    fn streaming_run_matches_buffered_collection() {
        // The incremental sink fed in 250 ms slices and the post-run
        // buffered path must agree on every metric, bit for bit.
        let config = ExperimentConfig::quick_test(SystemKind::Hammerhead);
        let (handle, end_us) = run_sim_limited(&config, RunLimit::Duration);
        let buffered = collect_metrics(&config, &handle, end_us);

        let mut sink = crate::MetricsSink::new(config.warmup_secs * 1_000_000);
        let (handle, end_us) = run_sim_streaming(&config, RunLimit::Duration, &mut sink);
        let streamed = collect_streamed_metrics(&config, &handle, end_us, &mut sink);

        assert_eq!(buffered.chain_hash, streamed.chain_hash);
        assert_eq!(buffered.commits, streamed.commits);
        assert_eq!(buffered.throughput_tps, streamed.throughput_tps);
        assert_eq!(buffered.latency, streamed.latency);
        assert_eq!(buffered.commit_latency, streamed.commit_latency);
        assert_eq!(buffered.submitted, streamed.submitted);
        // And the streaming run leaves no records buffered on live
        // validators — the bounded-memory property.
        assert!(handle.validator(0).metrics().exec_records.is_empty());
    }

    /// Rounds the attacker held leader slots: under round-robin that is
    /// every round where the static schedule elects it; under HammerHead
    /// epochs where the attacker sits in the excluded set contribute
    /// nothing. Computed from the epoch history so past epochs keep their
    /// own schedules (the active schedule only describes the present).
    fn attacker_slot_rounds(handle: &SimHandle, observer: usize, attacker: u16, n: usize) -> u64 {
        let v = handle.validator(observer);
        let last_round = v.committed_anchors().last().map(|a| a.round.0).unwrap_or(0);
        match v.hammerhead_policy() {
            None => last_round / n as u64,
            Some(p) => {
                // Epoch k spans [boundary k-1's new round, boundary k's).
                // The attacker holds ~1/n of the rounds of every epoch
                // whose *schedule* includes it, i.e. where the previous
                // boundary did not exclude it.
                let mut held = 0u64;
                let mut span_start = 0u64;
                let mut excluded_now = false;
                for summary in p.epoch_history() {
                    let span = summary.new_initial_round.0.saturating_sub(span_start);
                    if !excluded_now {
                        held += span / n as u64;
                    }
                    excluded_now = summary.excluded.contains(&ValidatorId(attacker));
                    span_start = summary.new_initial_round.0;
                }
                if !excluded_now {
                    held += last_round.saturating_sub(span_start) / n as u64;
                }
                held
            }
        }
    }

    /// How often each validator was excluded across the epoch history.
    fn exclusion_counts(handle: &SimHandle, observer: usize, n: usize) -> Vec<u64> {
        let mut counts = vec![0u64; n];
        if let Some(p) = handle.validator(observer).hammerhead_policy() {
            for summary in p.epoch_history() {
                for v in &summary.excluded {
                    counts[v.0 as usize] += 1;
                }
            }
        }
        counts
    }

    /// Satellite: for each strategy, HammerHead must strip the attacker
    /// of leader slots strictly faster than round-robin under the same
    /// seed — round-robin never demotes, so the attacker keeps its slot
    /// share for the whole run there.
    fn assert_demoted_faster_than_round_robin(
        schedule: ByzantineSchedule,
        duration_secs: u64,
        label: &str,
    ) {
        let attacker: u16 = 3;
        let mut base = ExperimentConfig::quick_test(SystemKind::Bullshark);
        base.duration_secs = duration_secs;
        base.hammerhead = HammerheadConfig { period_rounds: 6, ..HammerheadConfig::default() };
        base.byzantine = schedule;
        base.byzantine.validate(base.committee_size).expect("runnable byzantine schedule");

        let (rr_handle, rr_end) = run_sim_limited(&base, RunLimit::Duration);
        let rr = collect_metrics(&base, &rr_handle, rr_end);

        let mut hh_config = base.clone();
        hh_config.system = SystemKind::Hammerhead;
        let (hh_handle, hh_end) = run_sim_limited(&hh_config, RunLimit::Duration);
        let hh = collect_metrics(&hh_config, &hh_handle, hh_end);

        assert!(rr.agreement_ok && hh.agreement_ok, "{label}: safety must hold under attack");
        assert!(hh.schedule_epochs >= 2, "{label}: epochs: {}", hh.schedule_epochs);

        // The observer is the most advanced honest validator.
        let observer = (0..3usize)
            .max_by_key(|i| hh_handle.validator(*i).commit_count())
            .expect("honest validators exist");
        let n = base.committee_size;
        let rr_rounds = attacker_slot_rounds(&rr_handle, observer, attacker, n);
        let hh_rounds = attacker_slot_rounds(&hh_handle, observer, attacker, n);
        assert!(
            hh_rounds < rr_rounds,
            "{label}: hammerhead must strip the attacker's slots faster \
             (hh {hh_rounds} vs rr {rr_rounds} rounds held)"
        );

        // And the demotions must actually target the attacker: it is
        // excluded more often than any honest validator.
        let counts = exclusion_counts(&hh_handle, observer, n);
        for honest in 0..3usize {
            assert!(
                counts[attacker as usize] > counts[honest],
                "{label}: attacker excluded {} times vs honest {honest}'s {} — \
                 the mechanism must single out the attacker ({counts:?})",
                counts[attacker as usize],
                counts[honest]
            );
        }
    }

    #[test]
    fn equivocator_is_demoted_faster_than_round_robin() {
        let s = ByzantineSchedule::new().equivocate(3, 0, u64::MAX);
        assert_demoted_faster_than_round_robin(s, 8, "equivocate");
    }

    #[test]
    fn lazy_leader_is_demoted_faster_than_round_robin() {
        let s = ByzantineSchedule::new().lazy_leader(3, 400_000, 0, u64::MAX);
        assert_demoted_faster_than_round_robin(s, 8, "lazy_leader");
    }

    #[test]
    fn flip_flopper_is_demoted_faster_than_round_robin() {
        // 1-second phases: honest, lazy, honest, lazy... The lazy epochs
        // must drag the attacker's score under the honest floor.
        let s = ByzantineSchedule::new().flip_flop(3, 1_000_000, 400_000, 0, u64::MAX);
        assert_demoted_faster_than_round_robin(s, 10, "flip_flop");
    }

    #[test]
    fn vote_withholder_is_demoted_faster_than_round_robin() {
        // Withholding constrains the attacker's parent choice to a fixed
        // quorum — it must await specific vertices where honest nodes take
        // the fastest quorum, so its own proposals run systematically
        // late. The geo network makes that lateness visible to scoring.
        let mut base = ExperimentConfig::quick_test(SystemKind::Bullshark);
        base.committee_size = 7;
        base.geo = true;
        base.validator_config = None; // paper-calibrated vote windows
        base.duration_secs = 20;
        base.load_tps = 100;
        base.hammerhead = HammerheadConfig { period_rounds: 6, ..HammerheadConfig::default() };
        let attacker: u16 = 6;
        base.byzantine = ByzantineSchedule::new().withhold_votes(attacker, vec![0, 1], 0, u64::MAX);
        base.byzantine.validate(base.committee_size).expect("runnable byzantine schedule");

        let (rr_handle, rr_end) = run_sim_limited(&base, RunLimit::Duration);
        let rr = collect_metrics(&base, &rr_handle, rr_end);

        let mut hh_config = base.clone();
        hh_config.system = SystemKind::Hammerhead;
        let (hh_handle, hh_end) = run_sim_limited(&hh_config, RunLimit::Duration);
        let hh = collect_metrics(&hh_config, &hh_handle, hh_end);

        assert!(rr.agreement_ok && hh.agreement_ok, "withhold: safety must hold under attack");
        assert!(hh.schedule_epochs >= 2, "withhold: epochs: {}", hh.schedule_epochs);
        let observer = (0..6usize)
            .max_by_key(|i| hh_handle.validator(*i).commit_count())
            .expect("honest validators exist");
        let n = base.committee_size;
        let rr_rounds = attacker_slot_rounds(&rr_handle, observer, attacker, n);
        let hh_rounds = attacker_slot_rounds(&hh_handle, observer, attacker, n);
        assert!(
            hh_rounds < rr_rounds,
            "withhold: hammerhead must strip the attacker's slots faster \
             (hh {hh_rounds} vs rr {rr_rounds} rounds held)"
        );
    }

    /// Satellite: equivocation evidence is charged exactly once per twin
    /// pair — across RBC retransmits, garbage collection, and a WAL
    /// recovery replay. Node 3 equivocates all run; honest node 1 crashes
    /// and recovers mid-run, so its ledger must survive the replay
    /// without re-counting replayed slots.
    #[test]
    fn equivocation_evidence_counts_each_twin_pair_exactly_once() {
        let mut config = ExperimentConfig::quick_test(SystemKind::Hammerhead);
        config.duration_secs = 6;
        config.byzantine = ByzantineSchedule::new().equivocate(3, 0, u64::MAX);
        config.faults = FaultSchedule::new().crash(1, 1_500_000).recover(1, 3_000_000);
        config.faults.validate(config.committee_size).expect("runnable schedule");

        let (handle, end_us) = run_sim_limited(&config, RunLimit::Duration);
        let r = collect_metrics(&config, &handle, end_us);
        assert!(r.agreement_ok, "equivocation must not break safety");
        assert_eq!(r.restarts, 1);
        assert!(!r.recovery_divergence);

        // The attacker rebroadcast uncertified headers every sync tick, so
        // raw twin emissions far exceed distinct twinned slots — the
        // deduplication below is load-bearing, not vacuous.
        let behavior =
            handle.sim.node(NodeId(3)).behavior().expect("attacker carries its behavior");
        assert!(behavior.twins_sent() > 0, "the attacker actually equivocated");

        let attacker = ValidatorId(3);
        for honest in [0usize, 2] {
            let ledger = handle.validator(honest).equivocation_evidence();
            let units = ledger.count_for(attacker);
            assert!(units > 3, "honest {honest} must hold evidence, has {units}");
            // A crash-recovered validator may accidentally equivocate: a
            // proposal broadcast but not yet certified is not in the WAL,
            // so after replay it re-proposes that round with a different
            // block. The evidence channel cannot tell that from malice —
            // but it is bounded by the restart count, where the attacker
            // equivocates every round.
            assert!(
                ledger.total() - units <= r.restarts,
                "honest {honest}: non-attacker evidence exceeds the restart bound \
                 ({:?})",
                ledger.by_author().collect::<Vec<_>>()
            );
            // Exactly once per twin pair: one unit per (round, author)
            // slot, no matter how many retransmits re-delivered the pair.
            assert_eq!(
                ledger.slot_count() as u64,
                ledger.total(),
                "honest {honest}: every slot charged exactly one unit"
            );
        }
        let v0 = handle.validator(0).equivocation_evidence().count_for(attacker);
        let v2 = handle.validator(2).equivocation_evidence().count_for(attacker);
        assert_eq!(v0, v2, "never-crashed validators observed the same twinned slots");

        // The recovered validator: no loss before the crash, no
        // double-count from the WAL replay (replay inserts straight into
        // the DAG, never through the broadcast layer).
        let recovered = handle.validator(1).equivocation_evidence();
        let units = recovered.count_for(attacker);
        assert!(units > 0, "evidence survives the restart");
        assert!(units <= v0, "a crashed window cannot observe more than an always-up node");
        assert_eq!(recovered.slot_count() as u64, units, "replay must not inflate any slot");
    }

    #[test]
    fn all_honest_run_is_unchanged_by_the_byzantine_hook() {
        // The byzantine plumbing (actor indirection, empty schedule) must
        // leave an all-honest run bit-identical: chain hash, commits,
        // throughput. This is the programmatic face of the scenario
        // byte-identity gate.
        let config = ExperimentConfig::quick_test(SystemKind::Hammerhead);
        assert!(config.byzantine.is_empty());
        let a = run_experiment(&config);
        let mut with_empty = config.clone();
        with_empty.byzantine = ByzantineSchedule::new();
        let b = run_experiment(&with_empty);
        assert_eq!(a.chain_hash, b.chain_hash);
        assert_eq!(a.commits, b.commits);
        assert_eq!(a.throughput_tps, b.throughput_tps);
    }

    #[test]
    fn all_honest_run_is_unchanged_by_the_chaos_hook() {
        // The chaos plumbing (delivery-path hook, empty plan) must leave
        // a chaos-free run bit-identical — an empty plan draws no
        // randomness, so nothing downstream can shift.
        let config = ExperimentConfig::quick_test(SystemKind::Hammerhead);
        assert!(config.chaos.is_empty());
        let a = run_experiment(&config);
        let mut with_empty = config.clone();
        with_empty.chaos = ChaosSchedule::new();
        let b = run_experiment(&with_empty);
        assert_eq!(a.chain_hash, b.chain_hash);
        assert_eq!(a.commits, b.commits);
        assert_eq!(a.throughput_tps, b.throughput_tps);
        assert_eq!(a.chaos_dropped + a.chaos_duplicated + a.chaos_reordered, 0);
        assert_eq!(a.chaos_corrupt_rejected, 0);
        assert!(a.safety_records > 0, "the checker audited the run");
        assert_eq!(a.safety_violations, 0);
    }

    #[test]
    #[should_panic(expected = "invalid chaos schedule")]
    fn build_sim_rejects_invalid_chaos_schedules_up_front() {
        let mut config = ExperimentConfig::quick_test(SystemKind::Hammerhead);
        let mut entry = crate::ChaosEntry::all_links(0, u64::MAX);
        entry.drop = 1.5;
        config.chaos = ChaosSchedule::new().entry(entry);
        build_sim(&config);
    }

    /// Satellite: self-healing delivery under heavy symmetric loss. At
    /// 50% drop the run must still converge (commit progress, Total
    /// Order, clean safety audit), and the adaptive backoff must keep
    /// total retransmits within a constant factor of the no-loss
    /// baseline instead of storming.
    #[test]
    fn heavy_loss_converges_without_a_retry_storm() {
        let mut config = ExperimentConfig::quick_test(SystemKind::Hammerhead);
        config.duration_secs = 6;
        let clean = run_experiment(&config);

        let mut lossy_config = config.clone();
        let mut entry = crate::ChaosEntry::all_links(0, u64::MAX);
        entry.drop = 0.5;
        lossy_config.chaos = ChaosSchedule::new().entry(entry);
        lossy_config.chaos.validate(lossy_config.committee_size).expect("runnable chaos");
        let lossy = run_experiment(&lossy_config);

        assert!(lossy.agreement_ok, "loss must never break Total Order");
        assert_eq!(lossy.safety_violations, 0);
        assert!(lossy.chaos_dropped > 100, "the window actually dropped: {}", lossy.chaos_dropped);
        assert!(lossy.commits > 5, "50% loss still converges: {} commits", lossy.commits);
        // The no-loss baseline: a healthy network resolves everything
        // before any retry comes due, so the adaptive layer sends
        // nothing at all.
        assert_eq!(clean.rbc_retransmits, 0, "healthy runs never retransmit");
        // Retry-storm regression: recovery work stays bounded by a small
        // constant per node per sync tick. A storming implementation
        // (every outstanding item re-sent every tick) accumulates
        // dozens of digests per node under 50% loss and blows far past
        // this line; the backoff keeps it near one send per node-tick.
        let ticks =
            config.duration_secs * 1_000_000 / config.derive_validator_config().sync_tick_us;
        let budget = ticks * config.committee_size as u64 * 4;
        assert!(
            lossy.rbc_retransmits <= budget,
            "retry storm: {} retransmits under loss vs budget {}",
            lossy.rbc_retransmits,
            budget
        );
    }

    #[test]
    fn mixed_chaos_exercises_every_fault_and_stays_safe() {
        // Duplication, corruption and reordering together: duplicates
        // must be absorbed idempotently, corrupt frames must die at the
        // codec (counted, never delivered as a different valid message),
        // and the safety audit must stay clean throughout.
        let mut config = ExperimentConfig::quick_test(SystemKind::Hammerhead);
        config.duration_secs = 6;
        let mut entry = crate::ChaosEntry::all_links(0, u64::MAX);
        entry.drop = 0.1;
        entry.duplicate = 0.2;
        entry.corrupt = 0.15;
        entry.reorder_us = 40_000;
        config.chaos = ChaosSchedule::new().entry(entry);
        config.chaos.validate(config.committee_size).expect("runnable chaos");

        let r = run_experiment(&config);
        assert!(r.agreement_ok);
        assert_eq!(r.safety_violations, 0);
        assert!(r.safety_records > 0);
        assert!(r.chaos_dropped > 0);
        assert!(r.chaos_duplicated > 0);
        assert!(r.chaos_corrupt_rejected > 0, "corrupt frames must be rejected at decode");
        assert!(r.chaos_reordered > 0);
        assert!(r.commits > 10, "mixed chaos still converges: {} commits", r.commits);
    }

    #[test]
    #[should_panic(expected = "safety invariant violated")]
    fn injected_fork_fails_the_run_with_a_diagnostic() {
        // Acceptance gate: a forked history must abort the run. Two runs
        // under different seeds commit different chains; replaying both
        // histories into one audit as if they came from one cluster is
        // exactly a fork, and the checker must kill it.
        let config_a = ExperimentConfig::quick_test(SystemKind::Hammerhead);
        let mut config_b = config_a.clone();
        config_b.seed = 43;
        let (handle_a, _) = run_sim_limited(&config_a, RunLimit::Duration);
        let (handle_b, _) = run_sim_limited(&config_b, RunLimit::Duration);

        let mut audit = crate::SafetyChecker::new();
        for (validator, handle) in [(0u16, &handle_a), (1u16, &handle_b)] {
            let records: Vec<hammerhead::CommitRecord> = handle
                .validator(0)
                .committed_anchors()
                .iter()
                .enumerate()
                .map(|(i, a)| hammerhead::CommitRecord {
                    index: i as u64,
                    anchor: *a,
                    vertices: vec![*a],
                    replayed: false,
                })
                .collect();
            audit.observe_all(validator, &records);
        }
        assert!(!audit.is_clean(), "different seeds commit different anchors");
        audit.assert_clean();
    }

    #[test]
    #[should_panic(expected = "invalid byzantine schedule")]
    fn build_sim_rejects_invalid_byzantine_schedules_up_front() {
        let mut config = ExperimentConfig::quick_test(SystemKind::Hammerhead);
        // n = 4 → f = 1: two byzantine validators are unrunnable.
        config.byzantine = ByzantineSchedule::new().equivocate(2, 0, u64::MAX).lazy_leader(
            3,
            400_000,
            0,
            u64::MAX,
        );
        build_sim(&config);
    }

    #[test]
    fn determinism_same_seed_same_result() {
        let config = ExperimentConfig::quick_test(SystemKind::Hammerhead);
        let a = run_experiment(&config);
        let b = run_experiment(&config);
        assert_eq!(a.chain_hash, b.chain_hash);
        assert_eq!(a.commits, b.commits);
        assert_eq!(a.throughput_tps, b.throughput_tps);
    }

    #[test]
    fn seeds_change_executions_but_not_safety() {
        let mut config = ExperimentConfig::quick_test(SystemKind::Hammerhead);
        config.seed = 1;
        let a = run_experiment(&config);
        config.seed = 2;
        let b = run_experiment(&config);
        assert!(a.agreement_ok && b.agreement_ok);
    }
}
