//! The unified fault schedule: one ordered timeline of crash, recovery,
//! slowdown and partition events for a run.
//!
//! This is the single fault model flowing through every layer: scenario
//! files parse into it (via `hh-scenario`), [`FaultSchedule::validate`]
//! rejects unrunnable timelines up front, and
//! [`FaultSchedule::to_plan`] lowers it to the network simulator's
//! [`FaultPlan`] for execution. The experiment harness reads the same
//! schedule to decide which validators carry persistent storage (runs
//! with recoveries get a WAL-backed store so
//! `hammerhead::Validator::on_restart` has something to replay), which
//! validators count as live for metrics, and when to sample the network
//! round for the re-inclusion analysis.
//!
//! All times are microseconds of simulated time.

use hh_net::{Duration, FaultPlan, NodeId, PartitionSpec, SimTime, SlowdownSpec};
use std::fmt;

/// One timed fault event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FaultEvent {
    /// `node` stops processing messages and timers at `at_us`.
    Crash {
        /// The crashing validator.
        node: u16,
        /// Crash instant (µs).
        at_us: u64,
    },
    /// `node` restarts at `at_us`: volatile state is dropped and rebuilt
    /// from its persistent store (`Validator::on_restart`).
    Recover {
        /// The restarting validator.
        node: u16,
        /// Restart instant (µs).
        at_us: u64,
    },
    /// Messages to and from `node` gain `extra_us` one-way delay during
    /// `[from_us, until_us)`.
    Slowdown {
        /// The degraded validator.
        node: u16,
        /// Window start (inclusive, µs).
        from_us: u64,
        /// Window end (exclusive, µs); `u64::MAX` for "until the end".
        until_us: u64,
        /// Extra one-way delay (µs).
        extra_us: u64,
    },
    /// Messages between `group_a` and `group_b` are buffered during
    /// `[from_us, until_us)` and delivered after the heal.
    Partition {
        /// One side of the cut.
        group_a: Vec<u16>,
        /// The other side; validators in neither group talk to everyone.
        group_b: Vec<u16>,
        /// Window start (inclusive, µs).
        from_us: u64,
        /// Heal time (exclusive, µs).
        until_us: u64,
    },
}

/// An unrunnable fault schedule (contradictory or liveness-destroying).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultScheduleError(String);

impl fmt::Display for FaultScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for FaultScheduleError {}

/// The full fault schedule of a run: an ordered list of [`FaultEvent`]s.
///
/// Event order is preserved through lowering, so two schedules with the
/// same events in the same order produce bit-identical simulations.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultSchedule {
    events: Vec<FaultEvent>,
}

impl FaultSchedule {
    /// An empty schedule (no faults).
    pub fn new() -> Self {
        Self::default()
    }

    /// The events, in insertion order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Appends a crash event.
    #[must_use]
    pub fn crash(mut self, node: u16, at_us: u64) -> Self {
        self.events.push(FaultEvent::Crash { node, at_us });
        self
    }

    /// Crashes `nodes` at simulation start (the Fig. 2 configuration).
    #[must_use]
    pub fn crash_from_start<I: IntoIterator<Item = u16>>(mut self, nodes: I) -> Self {
        for node in nodes {
            self.events.push(FaultEvent::Crash { node, at_us: 0 });
        }
        self
    }

    /// Appends a recovery event.
    #[must_use]
    pub fn recover(mut self, node: u16, at_us: u64) -> Self {
        self.events.push(FaultEvent::Recover { node, at_us });
        self
    }

    /// Appends a bounded slowdown window.
    #[must_use]
    pub fn slowdown(mut self, node: u16, from_us: u64, until_us: u64, extra_us: u64) -> Self {
        self.events.push(FaultEvent::Slowdown { node, from_us, until_us, extra_us });
        self
    }

    /// Appends an open-ended slowdown (degraded until the end of the run)
    /// — the §1 incident's shape.
    #[must_use]
    pub fn slowdown_from(self, node: u16, from_us: u64, extra_us: u64) -> Self {
        self.slowdown(node, from_us, u64::MAX, extra_us)
    }

    /// Appends a partition window.
    #[must_use]
    pub fn partition(
        mut self,
        group_a: Vec<u16>,
        group_b: Vec<u16>,
        from_us: u64,
        until_us: u64,
    ) -> Self {
        self.events.push(FaultEvent::Partition { group_a, group_b, from_us, until_us });
        self
    }

    /// Crash the *last* `count` validators from t=0 (keeps leader slots of
    /// early ids intact, matching "maximum tolerable faults" benchmarks).
    ///
    /// # Errors
    ///
    /// Fails when `count >= committee_size`: crashing everyone (or more
    /// validators than exist) leaves nothing to measure.
    pub fn crash_last(committee_size: usize, count: usize) -> Result<Self, FaultScheduleError> {
        if count >= committee_size {
            return Err(FaultScheduleError(format!(
                "crash_last: crashing the last {count} of {committee_size} validators leaves \
                 no live validator"
            )));
        }
        let first = committee_size - count;
        Ok(FaultSchedule::new().crash_from_start((first..committee_size).map(|i| i as u16)))
    }

    /// Whether the schedule contains no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Whether any recovery event is scheduled (such runs get WAL-backed
    /// validator stores so `on_restart` has state to replay).
    pub fn has_recoveries(&self) -> bool {
        self.events.iter().any(|e| matches!(e, FaultEvent::Recover { .. }))
    }

    /// Recovery events as `(validator, at_us)`, in insertion order.
    pub fn recoveries(&self) -> Vec<(u16, u64)> {
        self.events
            .iter()
            .filter_map(|e| match e {
                FaultEvent::Recover { node, at_us } => Some((*node, *at_us)),
                _ => None,
            })
            .collect()
    }

    /// Distinct validators with a crash event anywhere on the timeline,
    /// ascending (the run's fault count).
    pub fn crashed_nodes(&self) -> Vec<u16> {
        let mut nodes: Vec<u16> = self
            .events
            .iter()
            .filter_map(|e| match e {
                FaultEvent::Crash { node, .. } => Some(*node),
                _ => None,
            })
            .collect();
        nodes.sort_unstable();
        nodes.dedup();
        nodes
    }

    /// Whether `node` is crashed at `t_us`: crashed at or before, with no
    /// recovery at or after that crash up to `t_us`.
    ///
    /// These are the same window semantics [`FaultPlan::crashed_at`]
    /// implements over its sorted index — the simulator and the metrics
    /// layer must agree on who is down. The equivalence is pinned by
    /// `schedule_and_plan_agree_on_crash_windows` below and sampled
    /// across random schedules by the `fault_roundtrip` property test;
    /// change either side only in lockstep.
    pub fn crashed_at(&self, node: u16, t_us: u64) -> bool {
        let last_crash = self
            .events
            .iter()
            .filter_map(|e| match e {
                FaultEvent::Crash { node: n, at_us } if *n == node && *at_us <= t_us => {
                    Some(*at_us)
                }
                _ => None,
            })
            .max();
        let Some(crash_us) = last_crash else {
            return false;
        };
        !self.events.iter().any(|e| {
            matches!(e, FaultEvent::Recover { node: n, at_us }
                if *n == node && *at_us >= crash_us && *at_us <= t_us)
        })
    }

    /// Validator indices not crashed at `t_us`, ascending.
    pub fn live_at(&self, committee_size: usize, t_us: u64) -> Vec<usize> {
        (0..committee_size).filter(|i| !self.crashed_at(*i as u16, t_us)).collect()
    }

    /// Checks the schedule against a committee of `committee_size`:
    ///
    /// * every referenced validator exists;
    /// * no contradictory crash/recovery sequencing — a recovery must
    ///   follow a crash of the same node, and a node cannot crash twice
    ///   without recovering in between;
    /// * at most `f = (n - 1) / 3` validators are crashed at any instant
    ///   (beyond that the protocol cannot commit and the run measures
    ///   nothing);
    /// * partitions have disjoint non-empty groups and non-empty windows;
    /// * slowdowns have positive delay and non-empty windows.
    ///
    /// # Errors
    ///
    /// Returns a [`FaultScheduleError`] naming the first violation.
    pub fn validate(&self, committee_size: usize) -> Result<(), FaultScheduleError> {
        let n = committee_size;
        let in_range = |node: u16| -> Result<(), FaultScheduleError> {
            if node as usize >= n {
                return Err(FaultScheduleError(format!(
                    "validator {node} is outside the committee of {n}"
                )));
            }
            Ok(())
        };

        // Per-node crash/recovery sequencing.
        let mut transitions: Vec<(u16, u64, bool)> = Vec::new(); // (node, at, is_crash)
        for event in &self.events {
            match event {
                FaultEvent::Crash { node, at_us } => {
                    in_range(*node)?;
                    transitions.push((*node, *at_us, true));
                }
                FaultEvent::Recover { node, at_us } => {
                    in_range(*node)?;
                    transitions.push((*node, *at_us, false));
                }
                FaultEvent::Slowdown { node, from_us, until_us, extra_us } => {
                    in_range(*node)?;
                    if *extra_us == 0 {
                        return Err(FaultScheduleError(format!(
                            "slowdown of validator {node} has zero extra delay"
                        )));
                    }
                    if *until_us <= *from_us {
                        return Err(FaultScheduleError(format!(
                            "slowdown window of validator {node} is empty \
                             ({from_us}µs..{until_us}µs)"
                        )));
                    }
                }
                FaultEvent::Partition { group_a, group_b, from_us, until_us } => {
                    if group_a.is_empty() || group_b.is_empty() {
                        return Err(FaultScheduleError(
                            "partition groups must both be non-empty".into(),
                        ));
                    }
                    for node in group_a.iter().chain(group_b) {
                        in_range(*node)?;
                    }
                    if let Some(shared) = group_a.iter().find(|x| group_b.contains(x)) {
                        return Err(FaultScheduleError(format!(
                            "validator {shared} is on both sides of a partition"
                        )));
                    }
                    if *until_us <= *from_us {
                        return Err(FaultScheduleError(format!(
                            "partition window is empty ({from_us}µs..{until_us}µs)"
                        )));
                    }
                }
            }
        }

        // Sequencing: sort per node by time (a crash and recovery at the
        // same instant order crash-first, a zero-length outage) and require
        // strict crash/recover alternation starting with a crash.
        transitions.sort_by_key(|(node, at, is_crash)| (*node, *at, !*is_crash));
        let mut k = 0;
        while k < transitions.len() {
            let node = transitions[k].0;
            let mut down = false;
            while k < transitions.len() && transitions[k].0 == node {
                let (_, at, is_crash) = transitions[k];
                match (is_crash, down) {
                    (true, true) => {
                        return Err(FaultScheduleError(format!(
                            "validator {node} crashes again at {at}µs without recovering first"
                        )))
                    }
                    (false, false) => {
                        return Err(FaultScheduleError(format!(
                            "validator {node} recovers at {at}µs without a preceding crash"
                        )))
                    }
                    (true, false) => down = true,
                    (false, true) => down = false,
                }
                k += 1;
            }
        }

        // Concurrency sweep: at no instant may more than f validators be
        // down. A recovery at t frees its node at t (window semantics), so
        // process recoveries before crashes at equal times.
        let f = n.saturating_sub(1) / 3;
        let mut sweep: Vec<(u64, bool)> =
            transitions.iter().map(|(_, at, is_crash)| (*at, *is_crash)).collect();
        sweep.sort_by_key(|(at, is_crash)| (*at, *is_crash));
        let mut down = 0usize;
        for (at, is_crash) in sweep {
            if is_crash {
                down += 1;
                if down > f {
                    return Err(FaultScheduleError(format!(
                        "{down} validators crashed at once at {at}µs exceeds f = {f} for a \
                         committee of {n}"
                    )));
                }
            } else {
                down = down.saturating_sub(1);
            }
        }
        Ok(())
    }

    /// Lowers the schedule to the network simulator's [`FaultPlan`],
    /// preserving event order (the simulator's event sequence numbers
    /// follow it).
    pub fn to_plan(&self) -> FaultPlan {
        let mut plan = FaultPlan::new();
        for event in &self.events {
            match event {
                FaultEvent::Crash { node, at_us } => {
                    plan = plan.crash(NodeId(*node as usize), SimTime(*at_us));
                }
                FaultEvent::Recover { node, at_us } => {
                    plan = plan.recover(NodeId(*node as usize), SimTime(*at_us));
                }
                FaultEvent::Slowdown { node, from_us, until_us, extra_us } => {
                    plan = plan.slowdown(SlowdownSpec {
                        node: NodeId(*node as usize),
                        from: SimTime(*from_us),
                        until: SimTime(*until_us),
                        extra: Duration::from_micros(*extra_us),
                    });
                }
                FaultEvent::Partition { group_a, group_b, from_us, until_us } => {
                    plan = plan.partition(PartitionSpec {
                        group_a: group_a.iter().map(|i| NodeId(*i as usize)).collect(),
                        group_b: group_b.iter().map(|i| NodeId(*i as usize)).collect(),
                        from: SimTime(*from_us),
                        until: SimTime(*until_us),
                    });
                }
            }
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crash_last_crashes_the_tail() {
        let s = FaultSchedule::crash_last(10, 3).expect("valid");
        assert_eq!(s.crashed_nodes(), vec![7, 8, 9]);
        assert!(s.crashed_at(8, 0));
        assert!(!s.crashed_at(0, 0));
        assert_eq!(s.live_at(10, 0), vec![0, 1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn crash_last_rejects_oversized_counts() {
        assert!(FaultSchedule::crash_last(4, 5).is_err());
        assert!(FaultSchedule::crash_last(4, 4).is_err());
        assert!(FaultSchedule::crash_last(0, 0).is_err());
    }

    #[test]
    fn recovery_windows_flow_into_liveness() {
        let s = FaultSchedule::new().crash(2, 5_000_000).recover(2, 9_000_000);
        assert!(!s.crashed_at(2, 4_999_999));
        assert!(s.crashed_at(2, 5_000_000));
        assert!(s.crashed_at(2, 8_999_999));
        assert!(!s.crashed_at(2, 9_000_000));
        assert_eq!(s.live_at(4, 6_000_000), vec![0, 1, 3]);
        assert_eq!(s.live_at(4, 10_000_000), vec![0, 1, 2, 3]);
        assert!(s.has_recoveries());
        assert_eq!(s.recoveries(), vec![(2, 9_000_000)]);
    }

    #[test]
    fn validate_accepts_a_full_dynamic_schedule() {
        let s = FaultSchedule::new()
            .crash(3, 2_000_000)
            .recover(3, 6_000_000)
            .crash(3, 9_000_000)
            .recover(3, 12_000_000)
            .slowdown_from(1, 4_000_000, 300_000)
            .partition(vec![0, 1], vec![2, 3, 4, 5, 6], 3_000_000, 5_000_000);
        assert!(s.validate(7).is_ok());
    }

    #[test]
    fn validate_rejects_recover_before_crash() {
        let s = FaultSchedule::new().recover(1, 5_000_000);
        let err = s.validate(4).unwrap_err().to_string();
        assert!(err.contains("without a preceding crash"), "{err}");

        let s = FaultSchedule::new().crash(1, 8_000_000).recover(1, 5_000_000);
        let err = s.validate(4).unwrap_err().to_string();
        assert!(err.contains("without a preceding crash"), "{err}");
    }

    #[test]
    fn validate_rejects_double_crash() {
        let s = FaultSchedule::new().crash(1, 1_000_000).crash(1, 2_000_000);
        let err = s.validate(7).unwrap_err().to_string();
        assert!(err.contains("crashes again"), "{err}");
    }

    #[test]
    fn validate_rejects_more_than_f_concurrent_crashes() {
        // n = 7 → f = 2; three validators down at once is unrunnable ...
        let s = FaultSchedule::new().crash(0, 0).crash(1, 0).crash(2, 1_000_000);
        let err = s.validate(7).unwrap_err().to_string();
        assert!(err.contains("exceeds f = 2"), "{err}");
        // ... but fine once staggered around a recovery.
        let s =
            FaultSchedule::new().crash(0, 0).crash(1, 0).recover(0, 500_000).crash(2, 1_000_000);
        assert!(s.validate(7).is_ok());
    }

    #[test]
    fn validate_rejects_bad_partitions_and_ranges() {
        let overlap = FaultSchedule::new().partition(vec![0, 1], vec![1, 2], 0, 1_000_000);
        assert!(overlap.validate(4).unwrap_err().to_string().contains("both sides"));

        let empty = FaultSchedule::new().partition(vec![], vec![1], 0, 1_000_000);
        assert!(empty.validate(4).is_err());

        let inverted = FaultSchedule::new().partition(vec![0], vec![1], 2_000_000, 1_000_000);
        assert!(inverted.validate(4).unwrap_err().to_string().contains("empty"));

        let out_of_range = FaultSchedule::new().crash(9, 0);
        assert!(out_of_range.validate(4).unwrap_err().to_string().contains("outside"));
    }

    #[test]
    fn lowering_preserves_event_order_and_windows() {
        let s = FaultSchedule::new()
            .crash_from_start([2, 3])
            .recover(3, 7_000_000)
            .slowdown_from(1, 1_000_000, 250_000)
            .partition(vec![0], vec![1], 2_000_000, 4_000_000);
        let plan = s.to_plan();
        assert_eq!(plan.crashes(), &[(NodeId(2), SimTime::ZERO), (NodeId(3), SimTime::ZERO)]);
        assert_eq!(plan.recoveries(), &[(NodeId(3), SimTime(7_000_000))]);
        assert!(plan.crashed_at(NodeId(2), SimTime(8_000_000)));
        assert!(!plan.crashed_at(NodeId(3), SimTime(8_000_000)));
        assert_eq!(
            plan.slowdown_delay(NodeId(1), NodeId(0), SimTime(1_500_000)),
            Duration::from_micros(250_000)
        );
        assert_eq!(
            plan.partition_release(NodeId(0), NodeId(1), SimTime(3_000_000)),
            Some(SimTime(4_000_000))
        );
    }

    #[test]
    fn schedule_and_plan_agree_on_crash_windows() {
        let s = FaultSchedule::new().crash(1, 3_000_000).recover(1, 6_000_000).crash(1, 9_000_000);
        let plan = s.to_plan();
        for t in [0u64, 3_000_000, 4_500_000, 6_000_000, 8_999_999, 9_000_000, 20_000_000] {
            assert_eq!(
                s.crashed_at(1, t),
                plan.crashed_at(NodeId(1), SimTime(t)),
                "disagreement at {t}"
            );
        }
    }
}
