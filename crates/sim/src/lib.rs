//! Whole-system simulation harness.
//!
//! Assembles [`hammerhead::Validator`] nodes and workload-driven load
//! generators on the deterministic discrete-event network (`hh-net`),
//! reproducing — and generalizing — the paper's measurement methodology
//! (§5):
//!
//! * geo-distributed validators (13 AWS regions, round-robin assignment);
//! * benchmark clients co-located with live validators, driven by a
//!   [`Workload`]: a timeline of deterministic arrival processes
//!   (constant, Poisson, on/off bursts, linear ramps), closed-loop
//!   (windowed) or open-loop submission, configurable modeled payload
//!   bytes and per-client heterogeneity — the paper's fixed-rate client
//!   is [`Workload::constant`], the default;
//! * *latency* = client submission → execution finality of the
//!   transaction; *throughput* = distinct transactions over the run;
//!   byte goodput weighs each transaction by its modeled wire size;
//! * a unified [`FaultSchedule`]: crash faults from t=0 (Fig. 2),
//!   mid-run crashes with WAL-backed recovery, slowdown faults (the §1
//!   incident) and partitions, validated up front and lowered to an
//!   [`hh_net::FaultPlan`];
//! * a [`ByzantineSchedule`] of strategic adversaries attacking the
//!   reputation mechanism — equivocation, vote withholding, lazy
//!   leadership, flip-flopping — lowered to [`ByzantineBehavior`] hooks
//!   that rewrite an attacker's network boundary while its validator
//!   logic stays honest;
//! * a [`ChaosSchedule`] of adverse-network windows — probabilistic
//!   frame drop, duplication, in-flight byte corruption (rejected at
//!   the receiving codec) and reorder, scoped per link, node or the
//!   whole mesh — lowered to an [`hh_net::ChaosPlan`] executed on the
//!   run's seeded RNG, so chaos-free runs stay bit-identical;
//! * an agreement audit across all live validators' commit sequences after
//!   every run, hardened by an always-on [`SafetyChecker`] asserting no
//!   fork, `(round, author)` slot uniqueness and commit monotonicity
//!   across WAL replays (safety is checked on every experiment, not
//!   assumed — a violation aborts the run with a diagnostic dump).
//!
//! # Example
//!
//! ```
//! use hh_sim::{ExperimentConfig, SystemKind, run_experiment};
//!
//! let mut config = ExperimentConfig::quick_test(SystemKind::Hammerhead);
//! config.committee_size = 4;
//! config.load_tps = 100;
//! let result = run_experiment(&config);
//! assert!(result.agreement_ok);
//! assert!(result.commits > 0);
//! ```
//!
//! Shaping the load instead of fixing a rate:
//!
//! ```
//! use hh_sim::{
//!     run_experiment, Arrival, ExperimentConfig, Phase, SubmissionMode, SystemKind, Workload,
//! };
//!
//! let mut config = ExperimentConfig::quick_test(SystemKind::Hammerhead);
//! config.workload = Workload {
//!     // Open-loop Poisson arrivals with 256-byte payloads.
//!     phases: vec![Phase { from_us: 0, arrival: Arrival::Poisson { scale: 1.0 } }],
//!     mode: SubmissionMode::Open,
//!     payload_bytes: 256,
//!     spread: 1.0,
//! };
//! config.workload.validate().expect("runnable workload");
//! let result = run_experiment(&config);
//! assert!(result.agreement_ok);
//! assert!(result.bytes_committed > 0);
//! ```

#![deny(rustdoc::broken_intra_doc_links)]

mod actor;
mod byzantine;
mod chaos_schedule;
mod experiment;
mod fault_schedule;
mod metrics;
pub mod prof;
mod safety;
mod sink;
mod timeseries;
mod workload;

pub use actor::{Actor, Client, NetMessage, MIN_CLIENT_WINDOW};
pub use byzantine::{
    ByzantineBehavior, ByzantineEntry, ByzantineSchedule, ByzantineScheduleError,
    ByzantineStrategy, BYZANTINE_TOKEN_BASE,
};
pub use chaos_schedule::{ChaosEntry, ChaosSchedule, ChaosScheduleError, ChaosTarget};
pub use experiment::{
    build_sim, collect_metrics, collect_streamed_metrics, run_experiment, run_experiment_limited,
    run_sim_limited, run_sim_streaming, ExperimentConfig, RecoverySample, RunLimit, RunResult,
    SimHandle, SystemKind,
};
pub use fault_schedule::{FaultEvent, FaultSchedule, FaultScheduleError};
pub use metrics::LatencySummary;
pub use safety::{SafetyChecker, SafetyViolation};
pub use sink::{MetricsSink, StreamingHistogram};
pub use timeseries::{Bucket, TimeSeries};
pub use workload::{
    Arrival, ArrivalKind, Phase, RateNow, SubmissionMode, Workload, WorkloadError,
    MAX_PAYLOAD_BYTES,
};
