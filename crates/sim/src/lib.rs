//! Whole-system simulation harness.
//!
//! Assembles [`hammerhead::Validator`] nodes and open-loop load generators
//! on the deterministic discrete-event network (`hh-net`), reproducing the
//! paper's measurement methodology (§5):
//!
//! * geo-distributed validators (13 AWS regions, round-robin assignment);
//! * benchmark clients submitting at a fixed rate to live validators,
//!   each co-located with its validator;
//! * *latency* = client submission → execution finality of the
//!   transaction; *throughput* = distinct transactions over the run;
//! * a unified [`FaultSchedule`]: crash faults from t=0 (Fig. 2),
//!   mid-run crashes with WAL-backed recovery, slowdown faults (the §1
//!   incident) and partitions, validated up front and lowered to an
//!   [`hh_net::FaultPlan`];
//! * an agreement audit across all live validators' commit sequences after
//!   every run (safety is checked on every experiment, not assumed).
//!
//! # Example
//!
//! ```
//! use hh_sim::{ExperimentConfig, SystemKind, run_experiment};
//!
//! let mut config = ExperimentConfig::quick_test(SystemKind::Hammerhead);
//! config.committee_size = 4;
//! config.load_tps = 100;
//! let result = run_experiment(&config);
//! assert!(result.agreement_ok);
//! assert!(result.commits > 0);
//! ```

#![deny(rustdoc::broken_intra_doc_links)]

mod actor;
mod experiment;
mod fault_schedule;
mod metrics;
mod sink;
mod timeseries;

pub use actor::{Actor, Client, NetMessage};
pub use experiment::{
    build_sim, collect_metrics, collect_streamed_metrics, run_experiment, run_experiment_limited,
    run_sim_limited, run_sim_streaming, ExperimentConfig, RecoverySample, RunLimit, RunResult,
    SimHandle, SystemKind,
};
pub use fault_schedule::{FaultEvent, FaultSchedule, FaultScheduleError};
pub use metrics::LatencySummary;
pub use sink::{MetricsSink, StreamingHistogram};
pub use timeseries::{Bucket, TimeSeries};
