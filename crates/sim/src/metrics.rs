//! Latency statistics matching the paper's reporting: mean ± one standard
//! deviation (Fig. 1/2 error bars) plus the p50/p95 percentiles quoted for
//! the §1 incident.

/// Summary statistics over a set of latencies (seconds).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct LatencySummary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean (s).
    pub mean: f64,
    /// Population standard deviation (s).
    pub stddev: f64,
    /// Median (s).
    pub p50: f64,
    /// 95th percentile (s).
    pub p95: f64,
    /// Maximum (s).
    pub max: f64,
}

impl LatencySummary {
    /// Computes the summary from raw microsecond samples.
    ///
    /// Returns the zero summary for an empty input (count = 0).
    pub fn from_micros(mut samples: Vec<u64>) -> Self {
        if samples.is_empty() {
            return LatencySummary::default();
        }
        samples.sort_unstable();
        let count = samples.len();
        let sum: f64 = samples.iter().map(|s| *s as f64).sum();
        let mean_us = sum / count as f64;
        let var = samples
            .iter()
            .map(|s| {
                let d = *s as f64 - mean_us;
                d * d
            })
            .sum::<f64>()
            / count as f64;
        LatencySummary {
            count,
            mean: mean_us / 1e6,
            stddev: var.sqrt() / 1e6,
            p50: percentile(&samples, 50.0) / 1e6,
            p95: percentile(&samples, 95.0) / 1e6,
            max: *samples.last().expect("non-empty") as f64 / 1e6,
        }
    }
}

/// Nearest-rank percentile over sorted samples (returns µs as f64).
fn percentile(sorted: &[u64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil().max(1.0) as usize;
    sorted[rank.min(sorted.len()) - 1] as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input_is_zero() {
        let s = LatencySummary::from_micros(vec![]);
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn constant_samples() {
        let s = LatencySummary::from_micros(vec![2_000_000; 10]);
        assert_eq!(s.count, 10);
        assert!((s.mean - 2.0).abs() < 1e-9);
        assert!(s.stddev.abs() < 1e-9);
        assert!((s.p50 - 2.0).abs() < 1e-9);
        assert!((s.p95 - 2.0).abs() < 1e-9);
        assert!((s.max - 2.0).abs() < 1e-9);
    }

    #[test]
    fn percentiles_on_known_distribution() {
        // 1..=100 ms.
        let samples: Vec<u64> = (1..=100u64).map(|i| i * 1000).collect();
        let s = LatencySummary::from_micros(samples);
        assert!((s.p50 - 0.050).abs() < 1e-9, "p50 = {}", s.p50);
        assert!((s.p95 - 0.095).abs() < 1e-9, "p95 = {}", s.p95);
        assert!((s.max - 0.100).abs() < 1e-9);
        assert!((s.mean - 0.0505).abs() < 1e-9);
    }

    #[test]
    fn unsorted_input_is_handled() {
        let s = LatencySummary::from_micros(vec![3_000_000, 1_000_000, 2_000_000]);
        assert!((s.p50 - 2.0).abs() < 1e-9);
        assert!((s.max - 3.0).abs() < 1e-9);
    }

    #[test]
    fn stddev_matches_hand_computation() {
        // {1s, 3s}: mean 2s, population stddev 1s.
        let s = LatencySummary::from_micros(vec![1_000_000, 3_000_000]);
        assert!((s.stddev - 1.0).abs() < 1e-9);
    }

    #[test]
    fn single_sample() {
        let s = LatencySummary::from_micros(vec![500_000]);
        assert_eq!(s.count, 1);
        assert!((s.p95 - 0.5).abs() < 1e-9);
    }
}
