//! One switch for the per-layer profiling counters.
//!
//! `hh_net::prof` (event loop: queue ops, deliveries, timers) and
//! `hh_crypto::prof` (digests, signatures, framed codec) each carry
//! their own flag because the two crates share no dependency edge; this
//! façade flips both together and re-exports the snapshot types so the
//! scenario executor has a single import. Counters are thread-local —
//! diff [`net_snapshot`]/[`crypto_snapshot`] around a run *on the
//! thread that executes it* to attribute cost to that run.

pub use hh_crypto::prof::{snapshot as crypto_snapshot, CryptoProf};
pub use hh_net::prof::{snapshot as net_snapshot, NetProf};

/// Enables or disables all hot-path profiling counters, process-wide.
pub fn set_enabled(on: bool) {
    hh_net::prof::set_enabled(on);
    hh_crypto::prof::set_enabled(on);
}

/// Whether profiling is on (the layers are only ever flipped together).
pub fn enabled() -> bool {
    hh_net::prof::enabled()
}
