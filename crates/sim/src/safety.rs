//! The always-on safety invariant checker.
//!
//! Every run feeds the committed sub-DAGs of every validator — live
//! commits and crash-recovery replay alike — into a [`SafetyChecker`],
//! which asserts the three invariants an adversarial network must never
//! be able to break (it may only slow the system down):
//!
//! 1. **No fork**: all validators agree on the anchor at every commit
//!    index — pairwise commit-prefix consistency, checked against the
//!    first writer of each index.
//! 2. **Slot uniqueness**: across every committed sub-DAG, a
//!    `(round, author)` slot resolves to exactly one vertex digest.
//! 3. **Commit monotonicity**: each validator's commit indices advance
//!    contiguously; a WAL replay may restart the sequence from zero but
//!    must then reproduce the same prefix (rule 1 holds it to the
//!    anchors the cluster already exposed before the crash).
//!
//! Violations are collected rather than panicking at the observation
//! site, so a failing run can dump *all* divergence before the harness
//! aborts with a per-validator diagnostic.

use hammerhead::CommitRecord;
use hh_crypto::Digest;
use hh_types::{Round, ValidatorId, VertexRef};
use std::collections::{BTreeMap, HashMap};

/// One detected safety violation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SafetyViolation {
    /// The validator whose observation exposed the violation.
    pub validator: u16,
    /// Human-readable description naming both sides of the divergence.
    pub detail: String,
}

impl std::fmt::Display for SafetyViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "validator {}: {}", self.validator, self.detail)
    }
}

/// Cross-validator safety invariant checker (see module docs).
#[derive(Debug, Default)]
pub struct SafetyChecker {
    /// Commit index → the first anchor any validator exposed for it.
    anchors: BTreeMap<u64, (u16, VertexRef)>,
    /// `(round, author)` → the first committed digest for that slot.
    slots: HashMap<(Round, ValidatorId), Digest>,
    /// Per-validator next expected commit index.
    cursors: HashMap<u16, u64>,
    /// Total records observed.
    records_seen: u64,
    violations: Vec<SafetyViolation>,
}

impl SafetyChecker {
    /// A fresh checker with no observations.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds one validator's commit records, in the order the validator
    /// produced them.
    pub fn observe_all(&mut self, validator: u16, records: &[CommitRecord]) {
        for r in records {
            self.observe(validator, r);
        }
    }

    /// Feeds a single commit record.
    pub fn observe(&mut self, validator: u16, record: &CommitRecord) {
        self.records_seen += 1;

        // Invariant 3: contiguous per-validator indices; only a WAL
        // replay may rewind, and only to the very start of the sequence.
        let cursor = self.cursors.entry(validator).or_insert(0);
        if record.index == *cursor {
            *cursor += 1;
        } else if record.replayed && record.index == 0 {
            *cursor = 1;
        } else {
            self.violations.push(SafetyViolation {
                validator,
                detail: format!(
                    "non-monotonic commit: index {} arrived while expecting {}{}",
                    record.index,
                    cursor,
                    if record.replayed { " (during replay)" } else { "" }
                ),
            });
            *cursor = record.index + 1;
        }

        // Invariant 1: every validator exposes the same anchor per index.
        match self.anchors.get(&record.index) {
            None => {
                self.anchors.insert(record.index, (validator, record.anchor));
            }
            Some((first_by, first)) if *first != record.anchor => {
                self.violations.push(SafetyViolation {
                    validator,
                    detail: format!(
                        "fork at commit index {}: anchor {} disagrees with {} first exposed \
                         by validator {}",
                        record.index, record.anchor, first, first_by
                    ),
                });
            }
            Some(_) => {}
        }

        // Invariant 2: one digest per (round, author) slot, ever.
        for v in &record.vertices {
            match self.slots.get(&(v.round, v.author)) {
                None => {
                    self.slots.insert((v.round, v.author), v.digest);
                }
                Some(first) if *first != v.digest => {
                    self.violations.push(SafetyViolation {
                        validator,
                        detail: format!(
                            "two committed vertices for slot ({}, {}): {} and {}",
                            v.round, v.author, first, v.digest
                        ),
                    });
                }
                Some(_) => {}
            }
        }
    }

    /// Violations detected so far, in detection order.
    pub fn violations(&self) -> &[SafetyViolation] {
        &self.violations
    }

    /// Whether no invariant has been violated.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Total commit records observed.
    pub fn records_seen(&self) -> u64 {
        self.records_seen
    }

    /// Aborts the run if any invariant has been violated.
    ///
    /// # Panics
    ///
    /// Panics with [`SafetyChecker::diagnostic_dump`] — every detected
    /// violation plus each validator's commit cursor and the global
    /// commit front — when the checker is not clean.
    pub fn assert_clean(&self) {
        if !self.is_clean() {
            panic!("safety invariant violated\n{}", self.diagnostic_dump());
        }
    }

    /// A per-validator diagnostic dump for failing runs: every
    /// violation plus each validator's commit cursor and the global
    /// commit front.
    pub fn diagnostic_dump(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "safety checker: {} violation(s) over {} record(s)",
            self.violations.len(),
            self.records_seen
        );
        for v in &self.violations {
            let _ = writeln!(out, "  - {v}");
        }
        let mut cursors: Vec<(&u16, &u64)> = self.cursors.iter().collect();
        cursors.sort();
        for (validator, cursor) in cursors {
            let _ = writeln!(out, "  validator {validator}: next commit index {cursor}");
        }
        if let Some((idx, (by, anchor))) = self.anchors.iter().next_back() {
            let _ = writeln!(out, "  commit front: index {idx} anchor {anchor} (first by {by})");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vref(round: u64, author: u16, tag: u8) -> VertexRef {
        VertexRef {
            round: Round(round),
            author: ValidatorId(author),
            digest: hh_crypto::sha256(&[tag, round as u8, author as u8]),
        }
    }

    fn record(index: u64, anchor: VertexRef, vertices: Vec<VertexRef>) -> CommitRecord {
        CommitRecord { index, anchor, vertices, replayed: false }
    }

    #[test]
    fn agreeing_validators_stay_clean() {
        let mut c = SafetyChecker::new();
        let a0 = vref(2, 0, 0);
        let a1 = vref(4, 1, 0);
        let subdag0 = vec![vref(1, 0, 0), vref(1, 1, 0), a0];
        let subdag1 = vec![vref(3, 2, 0), a1];
        for validator in 0..4u16 {
            c.observe(validator, &record(0, a0, subdag0.clone()));
            c.observe(validator, &record(1, a1, subdag1.clone()));
        }
        assert!(c.is_clean(), "{}", c.diagnostic_dump());
        assert_eq!(c.records_seen(), 8);
    }

    #[test]
    fn forked_anchor_is_detected_with_both_sides_named() {
        let mut c = SafetyChecker::new();
        let honest = vref(2, 0, 0);
        let forked = vref(2, 0, 9);
        c.observe(0, &record(0, honest, vec![honest]));
        c.observe(1, &record(0, forked, vec![forked]));
        assert!(!c.is_clean());
        let dump = c.diagnostic_dump();
        assert!(dump.contains("fork at commit index 0"), "{dump}");
        assert!(dump.contains(&honest.digest.to_string()), "{dump}");
        assert!(dump.contains(&forked.digest.to_string()), "{dump}");
    }

    #[test]
    fn duplicate_slot_with_distinct_digest_is_detected() {
        let mut c = SafetyChecker::new();
        let a = vref(2, 0, 0);
        let twin_a = vref(1, 3, 0);
        let twin_b = vref(1, 3, 7); // same slot (round 1, author 3), new digest
        c.observe(0, &record(0, a, vec![twin_a, a]));
        c.observe(1, &record(0, a, vec![twin_b, a]));
        let dump = c.diagnostic_dump();
        assert_eq!(c.violations().len(), 1, "{dump}");
        assert!(dump.contains("two committed vertices for slot"), "{dump}");
    }

    #[test]
    fn skipped_commit_index_is_non_monotonic() {
        let mut c = SafetyChecker::new();
        let a0 = vref(2, 0, 0);
        let a2 = vref(6, 2, 0);
        c.observe(0, &record(0, a0, vec![a0]));
        c.observe(0, &record(2, a2, vec![a2]));
        assert!(!c.is_clean());
        assert!(c.violations()[0].detail.contains("index 2 arrived while expecting 1"));
    }

    #[test]
    fn replay_may_rewind_to_zero_but_must_match() {
        let mut c = SafetyChecker::new();
        let a0 = vref(2, 0, 0);
        let a1 = vref(4, 1, 0);
        c.observe(3, &record(0, a0, vec![a0]));
        c.observe(3, &record(1, a1, vec![a1]));
        // Crash; replay reproduces the same prefix from zero.
        c.observe(3, &CommitRecord { replayed: true, ..record(0, a0, vec![a0]) });
        c.observe(3, &CommitRecord { replayed: true, ..record(1, a1, vec![a1]) });
        // Live commits continue past the replayed front.
        let a2 = vref(6, 2, 0);
        c.observe(3, &record(2, a2, vec![a2]));
        assert!(c.is_clean(), "{}", c.diagnostic_dump());

        // A replay that rewrites history is a fork.
        let rogue = vref(4, 1, 9);
        c.observe(3, &CommitRecord { replayed: true, ..record(0, a0, vec![a0]) });
        c.observe(3, &CommitRecord { replayed: true, ..record(1, rogue, vec![rogue]) });
        assert!(!c.is_clean());
        assert!(c.violations()[0].detail.contains("fork at commit index 1"));
    }

    #[test]
    fn live_rewind_without_replay_flag_is_flagged() {
        let mut c = SafetyChecker::new();
        let a0 = vref(2, 0, 0);
        c.observe(0, &record(0, a0, vec![a0]));
        c.observe(0, &record(0, a0, vec![a0]));
        assert!(!c.is_clean());
        assert!(c.violations()[0].detail.contains("index 0 arrived while expecting 1"));
    }
}
