//! Incremental, bounded-memory metrics: the streaming replacement for
//! the collect-every-sample-then-sort path.
//!
//! A [`MetricsSink`] is fed [`ExecRecord`]s as the simulation produces
//! them and keeps only fixed-size state per run: a log-scale
//! [`StreamingHistogram`] per tracked distribution (end-to-end latency,
//! commit latency, one per declared analysis window) plus exact integer
//! moments. Memory per run is O(histogram buckets), independent of run
//! length, committee size, or offered load — the property that lets a
//! parallel executor keep every core busy on wide sweeps without the
//! resident set growing with the sweep.
//!
//! Determinism: every accumulator is an integer (`u64`/`u128` counts and
//! sums), so the result is independent of the order records are fed.
//! Feeding the sink incrementally in 250 ms slices, post-run in one
//! pass, or from validators in any interleaving produces bit-identical
//! summaries — the argument behind `--jobs N` emitting byte-identical
//! JSON for every `N`.
//!
//! [`LatencySummary::from_micros`] remains the exact oracle; the
//! histogram's percentiles are upper bounds within one bucket width
//! (≤ 1/32 relative) of it, which the property tests pin down.

use crate::metrics::LatencySummary;
use hammerhead::ExecRecord;

/// Sub-buckets per power of two: 32 ⇒ percentile estimates within
/// 1/32 ≈ 3.1 % (relative) of the exact sample.
const SUB_BITS: u32 = 5;
const SUB: u64 = 1 << SUB_BITS;
/// Bucket count covering the whole `u64` microsecond range: one exact
/// bucket per value below `SUB`, then 32 per octave.
const BUCKETS: usize = (SUB + (64 - SUB_BITS as u64) * SUB) as usize;

/// Fixed-bucket log-scale latency histogram with exact streaming
/// moments.
///
/// `record` is O(1); the structure never allocates after construction
/// and never stores individual samples. Mean, standard deviation, count
/// and max are exact (integer accumulators); p50/p95 are bucket upper
/// bounds — at most one sub-bucket (1/32 relative) above the exact
/// nearest-rank percentile.
#[derive(Clone, Debug)]
pub struct StreamingHistogram {
    counts: Vec<u64>,
    count: u64,
    sum_us: u128,
    sum_sq_us: u128,
    max_us: u64,
}

impl Default for StreamingHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl StreamingHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        StreamingHistogram {
            counts: vec![0; BUCKETS],
            count: 0,
            sum_us: 0,
            sum_sq_us: 0,
            max_us: 0,
        }
    }

    /// The bucket index holding `value_us`. Values below `SUB` get a
    /// bucket each (exact); above, 32 sub-buckets per power of two.
    fn index(value_us: u64) -> usize {
        if value_us < SUB {
            value_us as usize
        } else {
            let msb = 63 - value_us.leading_zeros();
            let octave = msb - SUB_BITS;
            let sub = (value_us >> octave) - SUB;
            (SUB + octave as u64 * SUB + sub) as usize
        }
    }

    /// The largest value mapping to bucket `i` (the percentile estimate
    /// reported for ranks landing in it).
    fn upper(i: usize) -> u64 {
        let i = i as u64;
        if i < SUB {
            i
        } else {
            let octave = (i - SUB) / SUB;
            let sub = (i - SUB) % SUB;
            let bound = ((SUB + sub + 1) as u128) << octave;
            (bound - 1).min(u64::MAX as u128) as u64
        }
    }

    /// Records one latency sample (µs).
    pub fn record(&mut self, value_us: u64) {
        self.counts[Self::index(value_us)] += 1;
        self.count += 1;
        self.sum_us += value_us as u128;
        self.sum_sq_us += (value_us as u128) * (value_us as u128);
        self.max_us = self.max_us.max(value_us);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Nearest-rank percentile estimate in µs: the upper bound of the
    /// bucket holding the rank-`⌈p/100·n⌉` sample, clamped to the exact
    /// max. 0 when empty.
    fn percentile_us(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (((p / 100.0) * self.count as f64).ceil().max(1.0) as u64).min(self.count);
        let mut seen = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::upper(i).min(self.max_us);
            }
        }
        self.max_us
    }

    /// The summary in the paper's reporting shape. Mean/stddev/max are
    /// exact; p50/p95 are histogram estimates (see type docs).
    pub fn summary(&self) -> LatencySummary {
        if self.count == 0 {
            return LatencySummary::default();
        }
        let n = self.count as f64;
        let mean_us = self.sum_us as f64 / n;
        // Population variance from exact integer sums: n·Σx² − (Σx)² is a
        // non-negative integer (Cauchy–Schwarz), so no cancellation.
        let var_num = self.count as u128 * self.sum_sq_us - self.sum_us * self.sum_us;
        let stddev_us = (var_num as f64).sqrt() / n;
        LatencySummary {
            count: self.count as usize,
            mean: mean_us / 1e6,
            stddev: stddev_us / 1e6,
            p50: self.percentile_us(50.0) as f64 / 1e6,
            p95: self.percentile_us(95.0) as f64 / 1e6,
            max: self.max_us as f64 / 1e6,
        }
    }
}

/// One named submission-time window accumulated by the sink.
#[derive(Clone, Debug)]
struct WindowSink {
    name: String,
    from_us: u64,
    /// Exclusive.
    to_us: u64,
    hist: StreamingHistogram,
}

/// Streaming per-run metrics accumulator.
///
/// Feed it every [`ExecRecord`] (via [`MetricsSink::observe`]) as the
/// run produces them, then [`MetricsSink::finalize`] once the stop time
/// is known. Records whose execution completes beyond the current drain
/// frontier are parked in a small deferred buffer (bounded by the
/// execution backlog) and classified at finalize — this is what lets
/// [`RunLimit::Rounds`](crate::RunLimit) runs stream too, where the stop
/// time is only known at the end.
#[derive(Clone, Debug)]
pub struct MetricsSink {
    warmup_us: u64,
    executed: u64,
    executed_bytes: u64,
    latency: StreamingHistogram,
    commit_latency: StreamingHistogram,
    windows: Vec<WindowSink>,
    deferred: Vec<ExecRecord>,
    finalized: bool,
}

impl MetricsSink {
    /// A sink excluding samples submitted before `warmup_us`.
    pub fn new(warmup_us: u64) -> Self {
        MetricsSink {
            warmup_us,
            executed: 0,
            executed_bytes: 0,
            latency: StreamingHistogram::new(),
            commit_latency: StreamingHistogram::new(),
            windows: Vec::new(),
            deferred: Vec::new(),
            finalized: false,
        }
    }

    /// Adds a named submission-time window `[from_us, to_us)` whose
    /// end-to-end latency distribution is tracked separately.
    pub fn with_window(mut self, name: &str, from_us: u64, to_us: u64) -> Self {
        self.windows.push(WindowSink {
            name: name.to_string(),
            from_us,
            to_us,
            hist: StreamingHistogram::new(),
        });
        self
    }

    /// Feeds one record. `frontier_us` is the simulation time up to
    /// which the run is known to be inside the measurement window;
    /// records executing beyond it are deferred until
    /// [`MetricsSink::finalize`] decides whether they made the cut.
    pub fn observe(&mut self, rec: &ExecRecord, frontier_us: u64) {
        debug_assert!(!self.finalized, "observe after finalize");
        if rec.executed_at > frontier_us {
            self.deferred.push(*rec);
        } else {
            self.ingest(rec);
        }
    }

    fn ingest(&mut self, rec: &ExecRecord) {
        self.executed += 1;
        self.executed_bytes += rec.bytes as u64;
        if rec.submitted_at < self.warmup_us {
            return;
        }
        let latency = rec.executed_at - rec.submitted_at;
        self.latency.record(latency);
        self.commit_latency.record(rec.committed_at - rec.submitted_at);
        for w in &mut self.windows {
            if rec.submitted_at >= w.from_us && rec.submitted_at < w.to_us {
                w.hist.record(latency);
            }
        }
    }

    /// Classifies the deferred records against the final stop time:
    /// those executing at or before `end_us` count, the rest never
    /// reached finality inside the run and are dropped.
    pub fn finalize(&mut self, end_us: u64) {
        for rec in std::mem::take(&mut self.deferred) {
            if rec.executed_at <= end_us {
                self.ingest(&rec);
            }
        }
        self.finalized = true;
    }

    /// Transactions that reached execution finality inside the run.
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// Modeled wire bytes of those transactions (byte goodput).
    pub fn executed_bytes(&self) -> u64 {
        self.executed_bytes
    }

    /// Post-warmup end-to-end latency summary.
    pub fn latency_summary(&self) -> LatencySummary {
        self.latency.summary()
    }

    /// Post-warmup submission → commit latency summary.
    pub fn commit_latency_summary(&self) -> LatencySummary {
        self.commit_latency.summary()
    }

    /// `(name, latency summary)` per declared window, in declaration
    /// order.
    pub fn window_summaries(&self) -> Vec<(String, LatencySummary)> {
        self.windows.iter().map(|w| (w.name.clone(), w.hist.summary())).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_and_upper_are_consistent() {
        // Every value maps to a bucket whose bounds contain it, and the
        // bucket above starts strictly after this one ends.
        for v in (0..4096).chain([u64::MAX / 2, u64::MAX - 1, u64::MAX]) {
            let i = StreamingHistogram::index(v);
            assert!(v <= StreamingHistogram::upper(i), "v={v} above bucket {i} upper");
            if i > 0 {
                assert!(v > StreamingHistogram::upper(i - 1), "v={v} inside bucket {}", i - 1);
            }
        }
    }

    #[test]
    fn empty_histogram_is_zero_summary() {
        assert_eq!(StreamingHistogram::new().summary(), LatencySummary::default());
    }

    #[test]
    fn constant_samples_are_exact() {
        let mut h = StreamingHistogram::new();
        for _ in 0..10 {
            h.record(2_000_000);
        }
        let s = h.summary();
        assert_eq!(s.count, 10);
        assert!((s.mean - 2.0).abs() < 1e-9);
        assert!(s.stddev.abs() < 1e-9);
        // The percentile bucket upper bound is clamped to the exact max.
        assert!((s.p50 - 2.0).abs() < 1e-9);
        assert!((s.p95 - 2.0).abs() < 1e-9);
        assert!((s.max - 2.0).abs() < 1e-9);
    }

    #[test]
    fn feed_order_does_not_change_the_summary() {
        let samples: Vec<u64> = (0..500u64).map(|i| (i * 7919) % 3_000_000).collect();
        let mut fwd = StreamingHistogram::new();
        let mut rev = StreamingHistogram::new();
        for &s in &samples {
            fwd.record(s);
        }
        for &s in samples.iter().rev() {
            rev.record(s);
        }
        assert_eq!(fwd.summary(), rev.summary());
    }

    fn rec(submitted_at: u64, committed_at: u64, executed_at: u64) -> ExecRecord {
        ExecRecord { submitted_at, committed_at, executed_at, bytes: 20 }
    }

    #[test]
    fn sink_accumulates_executed_bytes() {
        let mut sink = MetricsSink::new(0);
        sink.observe(&rec(0, 50, 100), u64::MAX);
        sink.observe(&rec(10, 60, 200), u64::MAX);
        sink.finalize(u64::MAX);
        assert_eq!(sink.executed_bytes(), 40);
    }

    #[test]
    fn sink_defers_past_frontier_records_until_finalize() {
        let mut sink = MetricsSink::new(0);
        sink.observe(&rec(0, 50, 100), 1_000); // inside frontier: counted
        sink.observe(&rec(10, 60, 5_000), 1_000); // beyond frontier: deferred
        sink.observe(&rec(20, 70, 9_000), 1_000); // deferred, then dropped
        assert_eq!(sink.executed(), 1);
        sink.finalize(5_000);
        assert_eq!(sink.executed(), 2, "one deferred record made the cut");
        assert_eq!(sink.latency_summary().count, 2);
    }

    #[test]
    fn sink_warmup_excludes_latency_but_counts_execution() {
        let mut sink = MetricsSink::new(1_000);
        sink.observe(&rec(500, 600, 700), u64::MAX); // pre-warmup
        sink.observe(&rec(2_000, 2_500, 3_000), u64::MAX);
        sink.finalize(u64::MAX);
        assert_eq!(sink.executed(), 2);
        let s = sink.latency_summary();
        assert_eq!(s.count, 1);
        assert!((s.mean - 1e-3).abs() < 1e-12);
    }

    #[test]
    fn sink_windows_partition_by_submission_time() {
        let mut sink =
            MetricsSink::new(0).with_window("early", 0, 1_000).with_window("late", 1_000, 2_000);
        sink.observe(&rec(100, 150, 200), u64::MAX);
        sink.observe(&rec(1_500, 1_600, 1_700), u64::MAX);
        sink.observe(&rec(999, 1_100, 1_200), u64::MAX);
        sink.finalize(u64::MAX);
        let windows = sink.window_summaries();
        assert_eq!(windows[0].0, "early");
        assert_eq!(windows[0].1.count, 2);
        assert_eq!(windows[1].0, "late");
        assert_eq!(windows[1].1.count, 1);
    }
}
