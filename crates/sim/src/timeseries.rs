//! Per-interval time series over transaction records — throughput and
//! latency as they evolve through a run. Powers incident-style analyses
//! (how fast does HammerHead react to a degradation?) and ASCII sparkline
//! rendering in examples.

use hammerhead::ExecRecord;

/// One aggregation bucket.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Bucket {
    /// Transactions whose submission fell in this bucket and that reached
    /// execution finality.
    pub count: u64,
    /// Their modeled wire bytes (byte goodput per bucket).
    pub bytes: u64,
    /// Sum of their end-to-end latencies (µs).
    pub latency_sum_us: u64,
    /// Worst latency in the bucket (µs).
    pub latency_max_us: u64,
}

impl Bucket {
    /// Mean latency in seconds (0 for an empty bucket).
    pub fn mean_latency_s(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.latency_sum_us as f64 / self.count as f64 / 1e6
        }
    }
}

/// A fixed-width bucketed series over a run.
#[derive(Clone, Debug)]
pub struct TimeSeries {
    bucket_us: u64,
    buckets: Vec<Bucket>,
}

impl TimeSeries {
    /// Aggregates `records` (bucketed by submission time) into
    /// `duration_secs / bucket_secs` buckets.
    ///
    /// # Panics
    ///
    /// Panics if `bucket_secs` is zero.
    pub fn from_records<'a>(
        records: impl IntoIterator<Item = &'a ExecRecord>,
        bucket_secs: u64,
        duration_secs: u64,
    ) -> Self {
        assert!(bucket_secs > 0, "bucket width must be positive");
        let bucket_us = bucket_secs * 1_000_000;
        let n = (duration_secs / bucket_secs).max(1) as usize;
        let mut buckets = vec![Bucket::default(); n];
        for rec in records {
            let idx = (rec.submitted_at / bucket_us) as usize;
            if let Some(b) = buckets.get_mut(idx) {
                let latency = rec.executed_at.saturating_sub(rec.submitted_at);
                b.count += 1;
                b.bytes += rec.bytes as u64;
                b.latency_sum_us += latency;
                b.latency_max_us = b.latency_max_us.max(latency);
            }
        }
        TimeSeries { bucket_us, buckets }
    }

    /// The buckets in time order.
    pub fn buckets(&self) -> &[Bucket] {
        &self.buckets
    }

    /// Bucket width in seconds.
    pub fn bucket_secs(&self) -> u64 {
        self.bucket_us / 1_000_000
    }

    /// Per-bucket throughput (tx/s).
    pub fn throughput(&self) -> Vec<f64> {
        let secs = self.bucket_us as f64 / 1e6;
        self.buckets.iter().map(|b| b.count as f64 / secs).collect()
    }

    /// Per-bucket byte goodput (modeled wire bytes per second).
    pub fn throughput_bytes(&self) -> Vec<f64> {
        let secs = self.bucket_us as f64 / 1e6;
        self.buckets.iter().map(|b| b.bytes as f64 / secs).collect()
    }

    /// Per-bucket mean latency (s).
    pub fn mean_latency(&self) -> Vec<f64> {
        self.buckets.iter().map(|b| b.mean_latency_s()).collect()
    }

    /// Renders values as an ASCII sparkline (8 levels, scaled to the max).
    pub fn sparkline(values: &[f64]) -> String {
        const LEVELS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
        let max = values.iter().copied().fold(0.0_f64, f64::max);
        if max <= 0.0 {
            return LEVELS[0].to_string().repeat(values.len());
        }
        values
            .iter()
            .map(|v| {
                let idx = ((v / max) * (LEVELS.len() - 1) as f64).round() as usize;
                LEVELS[idx.min(LEVELS.len() - 1)]
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(submitted_s: u64, latency_ms: u64) -> ExecRecord {
        ExecRecord {
            submitted_at: submitted_s * 1_000_000,
            committed_at: submitted_s * 1_000_000 + latency_ms * 500,
            executed_at: submitted_s * 1_000_000 + latency_ms * 1_000,
            bytes: 100,
        }
    }

    #[test]
    fn buckets_by_submission_time() {
        let records = vec![rec(0, 100), rec(1, 200), rec(1, 300), rec(5, 400)];
        let ts = TimeSeries::from_records(&records, 1, 6);
        assert_eq!(ts.buckets().len(), 6);
        assert_eq!(ts.buckets()[0].count, 1);
        assert_eq!(ts.buckets()[1].count, 2);
        assert_eq!(ts.buckets()[5].count, 1);
        assert!((ts.buckets()[1].mean_latency_s() - 0.25).abs() < 1e-9);
        assert_eq!(ts.buckets()[1].latency_max_us, 300_000);
    }

    #[test]
    fn throughput_respects_bucket_width() {
        let records = vec![rec(0, 10), rec(1, 10), rec(2, 10), rec(3, 10)];
        let ts = TimeSeries::from_records(&records, 2, 4);
        assert_eq!(ts.buckets().len(), 2);
        assert_eq!(ts.throughput(), vec![1.0, 1.0]); // 2 txs / 2 s
        assert_eq!(ts.throughput_bytes(), vec![100.0, 100.0]); // 200 B / 2 s
    }

    #[test]
    fn out_of_range_records_ignored() {
        let records = vec![rec(99, 10)];
        let ts = TimeSeries::from_records(&records, 1, 5);
        assert!(ts.buckets().iter().all(|b| b.count == 0));
    }

    #[test]
    fn sparkline_scales_to_max() {
        let line = TimeSeries::sparkline(&[0.0, 0.5, 1.0]);
        assert_eq!(line.chars().count(), 3);
        assert!(line.starts_with('▁'));
        assert!(line.ends_with('█'));
        // All-zero input renders flat, not panicking on division by zero.
        assert_eq!(TimeSeries::sparkline(&[0.0, 0.0]), "▁▁");
    }

    #[test]
    fn empty_records_empty_buckets() {
        let ts = TimeSeries::from_records(std::iter::empty(), 1, 3);
        assert_eq!(ts.buckets().len(), 3);
        assert_eq!(ts.mean_latency(), vec![0.0, 0.0, 0.0]);
    }
}
