//! Workload generation: deterministic arrival processes driving the
//! benchmark clients.
//!
//! A [`Workload`] describes the *shape* of offered load, independent of
//! its magnitude: an ordered timeline of [`Phase`]s, each with an
//! [`Arrival`] process (constant, Poisson, on/off bursts, linear ramp),
//! a submission mode (closed-loop windowed vs open-loop), a modeled
//! transaction payload size, and a per-client heterogeneity `spread`.
//! The magnitude — the run's total offered rate — stays on
//! [`ExperimentConfig::load_tps`](crate::ExperimentConfig::load_tps):
//! every rate in a workload is a dimensionless *scale* multiplied by
//! each client's share of that axis, so one workload shape sweeps
//! cleanly across a load axis.
//!
//! Every process is deterministic: all randomness (jitter, exponential
//! inter-arrivals, start staggering) comes from the simulation's seeded
//! RNG, so identical seeds reproduce identical arrival sequences. The
//! default workload ([`Workload::constant`]) reproduces the historical
//! fixed-rate client bit for bit — scenario files without a
//! `[workload]` table keep their exact output bytes.
//!
//! # Example
//!
//! ```
//! use hh_sim::{Arrival, Phase, SubmissionMode, Workload};
//!
//! // Steady half load, then 2s-on/2s-off bursts at full rate, open loop.
//! let workload = Workload {
//!     phases: vec![
//!         Phase { from_us: 0, arrival: Arrival::Constant { scale: 0.5 } },
//!         Phase {
//!             from_us: 10_000_000,
//!             arrival: Arrival::OnOff { scale: 1.0, burst_secs: 2.0, idle_secs: 2.0 },
//!         },
//!     ],
//!     mode: SubmissionMode::Open,
//!     payload_bytes: 512,
//!     spread: 1.0,
//! };
//! workload.validate().unwrap();
//! // 11s into the run: inside the first burst of the on/off phase.
//! match workload.rate_at(100.0, 11_000_000, 40_000_000) {
//!     hh_sim::RateNow::Active { tps, .. } => assert!((tps - 100.0).abs() < 1e-9),
//!     other => panic!("expected an active burst, got {other:?}"),
//! }
//! ```

use std::fmt;

/// How a client paces its submissions against confirmations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SubmissionMode {
    /// Bounded in-flight window (today's benchmark-driver behavior):
    /// the client skips ticks while `window` of its transactions await
    /// finality confirmation, converting latency degradation into
    /// throughput loss by Little's law.
    Closed,
    /// No window: the client fires at its configured rate regardless of
    /// confirmations. The right mode for saturation sweeps, where the
    /// offered rate must stay independent of the system's latency.
    Open,
}

/// The arrival process of one workload phase.
///
/// Rates are dimensionless scales on the client's base rate (its share
/// of the run's `load_tps`), so a shape composes with the load axis.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Arrival {
    /// Fixed-rate arrivals with ±10% uniform jitter — the historical
    /// client, and the `[load] tps` sugar at `scale = 1`.
    Constant {
        /// Rate multiplier on the client's base rate.
        scale: f64,
    },
    /// Memoryless arrivals: exponential inter-arrival times with mean
    /// `1 / (scale × base rate)`, sampled by inverse CDF from one
    /// uniform draw per submission.
    Poisson {
        /// Rate multiplier on the client's base rate.
        scale: f64,
    },
    /// A square wave anchored at the phase start: `burst_secs` of
    /// constant-with-jitter arrivals at the scaled rate, then
    /// `idle_secs` of silence, repeating until the phase ends.
    OnOff {
        /// Rate multiplier during bursts.
        scale: f64,
        /// Burst length in seconds (> 0).
        burst_secs: f64,
        /// Idle gap between bursts in seconds (0 degenerates to
        /// constant).
        idle_secs: f64,
    },
    /// Instantaneous rate interpolated linearly from `from_scale` at
    /// the phase start to `to_scale` at the phase end (the next phase's
    /// start, or the nominal run duration for the last phase), with the
    /// constant process's ±10% jitter at each instant.
    Ramp {
        /// Rate multiplier at the phase start.
        from_scale: f64,
        /// Rate multiplier at the phase end.
        to_scale: f64,
    },
}

impl Arrival {
    /// The largest scale this process ever reaches (validation).
    fn peak_scale(&self) -> f64 {
        match *self {
            Arrival::Constant { scale } | Arrival::Poisson { scale } => scale,
            Arrival::OnOff { scale, .. } => scale,
            Arrival::Ramp { from_scale, to_scale } => from_scale.max(to_scale),
        }
    }
}

/// One entry of a workload timeline: from `from_us` (simulated
/// microseconds) until the next phase starts (or the run ends), clients
/// follow `arrival`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Phase {
    /// Phase start, in simulated microseconds.
    pub from_us: u64,
    /// The arrival process in force.
    pub arrival: Arrival,
}

/// A full workload description. See the module docs for the model.
#[derive(Clone, Debug, PartialEq)]
pub struct Workload {
    /// The timeline, ordered by `from_us`, first phase at 0.
    pub phases: Vec<Phase>,
    /// Closed-loop (windowed) or open-loop submission.
    pub mode: SubmissionMode,
    /// Modeled payload size per transaction, bytes. Purely an
    /// accounting weight (batching bounds, byte metrics): the codec and
    /// vertex digests never carry it, so payload size cannot change a
    /// run's chain hashes.
    pub payload_bytes: u32,
    /// Per-client heterogeneity: the ratio between the heaviest and
    /// lightest client's base rate (≥ 1; 1 = uniform). Rates are
    /// assigned deterministically by client index and normalized so
    /// they still sum to the run's total offered rate.
    pub spread: f64,
}

impl Default for Workload {
    fn default() -> Self {
        Workload::constant()
    }
}

/// An unrunnable [`Workload`] (see [`Workload::validate`]).
#[derive(Clone, Debug, PartialEq)]
pub struct WorkloadError(String);

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid workload: {}", self.0)
    }
}

impl std::error::Error for WorkloadError {}

/// The instantaneous demand a client sees at some instant.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum RateNow {
    /// Submit at `tps`, drawing the next inter-arrival from `process`.
    Active {
        /// The client's current offered rate, tx/s.
        tps: f64,
        /// Which inter-arrival distribution to sample.
        process: ArrivalKind,
    },
    /// No demand until `until_us` (an off-burst gap, a zero-rate phase,
    /// or the end of all activity when `until_us == u64::MAX`).
    Idle {
        /// First instant demand may resume.
        until_us: u64,
    },
}

/// The inter-arrival distribution of an active instant.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ArrivalKind {
    /// Fixed interval with ±10% uniform jitter.
    Jittered,
    /// Exponential inter-arrival (Poisson process).
    Exponential,
}

/// The maximum modeled payload size (1 MiB) — anything larger is a
/// configuration mistake, not a workload.
pub const MAX_PAYLOAD_BYTES: u32 = 1 << 20;

impl Workload {
    /// The default workload: one constant full-rate phase, closed loop,
    /// zero payload, uniform clients — exactly the historical client
    /// shape, and what a bare `[load] tps` scenario key desugars to.
    pub fn constant() -> Self {
        Workload {
            phases: vec![Phase { from_us: 0, arrival: Arrival::Constant { scale: 1.0 } }],
            mode: SubmissionMode::Closed,
            payload_bytes: 0,
            spread: 1.0,
        }
    }

    /// Checks the workload describes something runnable: a non-empty
    /// timeline starting at 0 and strictly ascending, non-negative
    /// finite scales with at least one positive, positive burst
    /// lengths, `spread ≥ 1`, payload within [`MAX_PAYLOAD_BYTES`].
    pub fn validate(&self) -> Result<(), WorkloadError> {
        if self.phases.is_empty() {
            return Err(WorkloadError("at least one phase is required".into()));
        }
        if self.phases[0].from_us != 0 {
            return Err(WorkloadError("the first phase must start at 0".into()));
        }
        for pair in self.phases.windows(2) {
            if pair[1].from_us <= pair[0].from_us {
                return Err(WorkloadError(format!(
                    "phase starts must be strictly ascending ({} then {})",
                    pair[0].from_us, pair[1].from_us
                )));
            }
        }
        let mut any_active = false;
        for phase in &self.phases {
            let peak = phase.arrival.peak_scale();
            if !peak.is_finite() || peak < 0.0 {
                return Err(WorkloadError(format!("bad rate scale {peak}")));
            }
            any_active |= peak > 0.0;
            match phase.arrival {
                Arrival::Constant { scale } | Arrival::Poisson { scale } => {
                    if scale < 0.0 || !scale.is_finite() {
                        return Err(WorkloadError(format!("bad rate scale {scale}")));
                    }
                }
                Arrival::OnOff { scale, burst_secs, idle_secs } => {
                    if scale < 0.0 || !scale.is_finite() {
                        return Err(WorkloadError(format!("bad rate scale {scale}")));
                    }
                    // Below 1 µs the burst truncates to zero simulated
                    // time and the phase would be silently idle forever.
                    if burst_secs * 1e6 < 1.0 || !burst_secs.is_finite() {
                        return Err(WorkloadError(format!(
                            "on/off burst_secs must be at least 1 µs, got {burst_secs}"
                        )));
                    }
                    if idle_secs < 0.0 || !idle_secs.is_finite() {
                        return Err(WorkloadError(format!(
                            "on/off idle_secs must be non-negative, got {idle_secs}"
                        )));
                    }
                }
                Arrival::Ramp { from_scale, to_scale } => {
                    if from_scale < 0.0 || to_scale < 0.0 {
                        return Err(WorkloadError("ramp scales must be non-negative".into()));
                    }
                }
            }
        }
        if !any_active {
            return Err(WorkloadError("every phase has zero rate — nothing ever arrives".into()));
        }
        if self.spread < 1.0 || !self.spread.is_finite() {
            return Err(WorkloadError(format!("spread must be ≥ 1, got {}", self.spread)));
        }
        if self.payload_bytes > MAX_PAYLOAD_BYTES {
            return Err(WorkloadError(format!(
                "payload_bytes {} exceeds the {MAX_PAYLOAD_BYTES} cap",
                self.payload_bytes
            )));
        }
        Ok(())
    }

    /// The phase in force at `at_us` (the last phase whose start is at
    /// or before it).
    fn phase_index(&self, at_us: u64) -> usize {
        match self.phases.partition_point(|p| p.from_us <= at_us) {
            0 => 0,
            k => k - 1,
        }
    }

    /// The demand a client with base rate `base_tps` sees at `at_us`,
    /// for a run of nominal length `duration_us` (which bounds the last
    /// phase for ramps; on/off and constant phases never read it).
    pub fn rate_at(&self, base_tps: f64, at_us: u64, duration_us: u64) -> RateNow {
        let i = self.phase_index(at_us);
        let phase = &self.phases[i];
        let phase_end =
            self.phases.get(i + 1).map(|p| p.from_us).unwrap_or_else(|| duration_us.max(at_us + 1));
        let active = |scale: f64, process: ArrivalKind| {
            let tps = base_tps * scale;
            if tps > 0.0 {
                RateNow::Active { tps, process }
            } else {
                RateNow::Idle { until_us: phase_end }
            }
        };
        match phase.arrival {
            Arrival::Constant { scale } => active(scale, ArrivalKind::Jittered),
            Arrival::Poisson { scale } => active(scale, ArrivalKind::Exponential),
            Arrival::OnOff { scale, burst_secs, idle_secs } => {
                let burst_us = (burst_secs * 1e6) as u64;
                let idle_us = (idle_secs * 1e6) as u64;
                let period = burst_us + idle_us;
                // saturating_sub keeps this total for unvalidated
                // workloads whose first phase starts after `at_us`.
                let pos = at_us.saturating_sub(phase.from_us) % period.max(1);
                if pos < burst_us || idle_us == 0 {
                    active(scale, ArrivalKind::Jittered)
                } else {
                    // Sleep to the next burst start, or hand over to the
                    // next phase if it begins first.
                    let next_burst = at_us + (period - pos);
                    RateNow::Idle { until_us: next_burst.min(phase_end) }
                }
            }
            Arrival::Ramp { from_scale, to_scale } => {
                let span = phase_end.saturating_sub(phase.from_us).max(1) as f64;
                let progress = (at_us.saturating_sub(phase.from_us) as f64 / span).clamp(0.0, 1.0);
                let scale = from_scale + (to_scale - from_scale) * progress;
                // Under a changing rate the next inter-arrival must solve
                // ∫ r(t) dt = 1, not invert the instantaneous rate —
                // inverting r at the foot of a rising ramp sleeps far
                // past the ramp and underdrives its integral. For a
                // linear r(t) = r₀ + b·t the solution is the quadratic
                // root dt = (−r₀ + √(r₀² + 2b)) / b. The reported rate is
                // the *effective* one (1/dt), which the client jitters
                // like any constant interval.
                let r0 = (base_tps * scale / 1e6).max(0.0); // tx/µs now
                let slope = base_tps * (to_scale - from_scale) / span / 1e6; // tx/µs per µs
                let dt_us = if slope.abs() < 1e-18 {
                    if r0 > 0.0 {
                        1.0 / r0
                    } else {
                        f64::INFINITY
                    }
                } else {
                    let disc = r0 * r0 + 2.0 * slope;
                    if disc > 0.0 {
                        (-r0 + disc.sqrt()) / slope
                    } else {
                        // Falling ramp that hits zero before the next
                        // arrival was due.
                        f64::INFINITY
                    }
                };
                let arrival_at = at_us as f64 + dt_us;
                if !arrival_at.is_finite() || arrival_at >= phase_end as f64 {
                    // No arrival before the phase hands over.
                    RateNow::Idle { until_us: phase_end }
                } else {
                    RateNow::Active { tps: 1e6 / dt_us.max(1.0), process: ArrivalKind::Jittered }
                }
            }
        }
    }

    /// Splits a total offered rate across `clients` clients.
    ///
    /// With `spread == 1` every client gets `total / clients` — the
    /// exact historical expression, preserving output bytes for legacy
    /// scenarios. With `spread > 1`, client `k` of `C` gets a weight
    /// interpolated linearly from 1 (client 0) to `spread` (client
    /// `C−1`), normalized so the weights still sum to `total` — the
    /// heterogeneous-demand shape of the dynamic-scheduling literature.
    pub fn client_rates(&self, total_tps: f64, clients: usize) -> Vec<f64> {
        if clients == 0 {
            return Vec::new();
        }
        if self.spread == 1.0 || clients == 1 {
            return vec![total_tps / clients as f64; clients];
        }
        let weights: Vec<f64> = (0..clients)
            .map(|k| 1.0 + (self.spread - 1.0) * k as f64 / (clients - 1) as f64)
            .collect();
        let sum: f64 = weights.iter().sum();
        weights.into_iter().map(|w| total_tps * w / sum).collect()
    }

    /// Whether any client submits without an in-flight window.
    pub fn is_open_loop(&self) -> bool {
        self.mode == SubmissionMode::Open
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn phase(from_us: u64, arrival: Arrival) -> Phase {
        Phase { from_us, arrival }
    }

    #[test]
    fn default_workload_is_the_legacy_shape() {
        let w = Workload::constant();
        w.validate().unwrap();
        assert_eq!(w.mode, SubmissionMode::Closed);
        assert_eq!(w.payload_bytes, 0);
        match w.rate_at(350.0, 5_000_000, 60_000_000) {
            RateNow::Active { tps, process } => {
                assert!((tps - 350.0).abs() < 1e-12);
                assert_eq!(process, ArrivalKind::Jittered);
            }
            other => panic!("constant workload must always be active, got {other:?}"),
        }
    }

    #[test]
    fn uniform_split_matches_legacy_expression() {
        let w = Workload::constant();
        let rates = w.client_rates(1000.0, 7);
        // Exactly `total / clients`, the historical per-client formula.
        assert!(rates.iter().all(|r| *r == 1000.0 / 7.0));
    }

    #[test]
    fn spread_splits_sum_to_total_and_order_by_index() {
        let w = Workload { spread: 4.0, ..Workload::constant() };
        let rates = w.client_rates(1000.0, 5);
        let sum: f64 = rates.iter().sum();
        assert!((sum - 1000.0).abs() < 1e-9, "sum {sum}");
        for pair in rates.windows(2) {
            assert!(pair[0] < pair[1], "rates must ascend with client index: {rates:?}");
        }
        assert!((rates[4] / rates[0] - 4.0).abs() < 1e-9, "heaviest/lightest = spread");
    }

    #[test]
    fn phases_resolve_by_time() {
        let w = Workload {
            phases: vec![
                phase(0, Arrival::Constant { scale: 0.5 }),
                phase(10_000_000, Arrival::Poisson { scale: 2.0 }),
            ],
            ..Workload::constant()
        };
        w.validate().unwrap();
        match w.rate_at(100.0, 9_999_999, 40_000_000) {
            RateNow::Active { tps, process } => {
                assert!((tps - 50.0).abs() < 1e-9);
                assert_eq!(process, ArrivalKind::Jittered);
            }
            other => panic!("{other:?}"),
        }
        match w.rate_at(100.0, 10_000_000, 40_000_000) {
            RateNow::Active { tps, process } => {
                assert!((tps - 200.0).abs() < 1e-9);
                assert_eq!(process, ArrivalKind::Exponential);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn onoff_square_wave_idles_between_bursts() {
        let w = Workload {
            phases: vec![phase(0, Arrival::OnOff { scale: 1.0, burst_secs: 2.0, idle_secs: 3.0 })],
            ..Workload::constant()
        };
        w.validate().unwrap();
        assert!(matches!(w.rate_at(100.0, 1_500_000, 60_000_000), RateNow::Active { .. }));
        match w.rate_at(100.0, 2_500_000, 60_000_000) {
            RateNow::Idle { until_us } => assert_eq!(until_us, 5_000_000, "next burst start"),
            other => panic!("{other:?}"),
        }
        // Second cycle.
        assert!(matches!(w.rate_at(100.0, 5_000_001, 60_000_000), RateNow::Active { .. }));
    }

    #[test]
    fn ramp_interpolates_linearly_to_the_phase_end() {
        let w = Workload {
            phases: vec![phase(0, Arrival::Ramp { from_scale: 0.0, to_scale: 2.0 })],
            ..Workload::constant()
        };
        w.validate().unwrap();
        // Midpoint of a 40s run: instantaneous scale 1.0, and the
        // effective (integrated) rate is within a fraction of it.
        match w.rate_at(100.0, 20_000_000, 40_000_000) {
            RateNow::Active { tps, .. } => {
                assert!((tps - 100.0).abs() / 100.0 < 0.01, "tps {tps}")
            }
            other => panic!("{other:?}"),
        }
        // At t=0 the instantaneous rate is zero, but a rising ramp still
        // has a finite first arrival (∫ r = 1 is solvable).
        match w.rate_at(100.0, 0, 40_000_000) {
            RateNow::Active { tps, .. } => assert!(tps > 0.0 && tps < 10.0, "tps {tps}"),
            other => panic!("{other:?}"),
        }
        // A falling ramp that dies before its next arrival idles to the
        // phase end.
        let falling = Workload {
            phases: vec![phase(0, Arrival::Ramp { from_scale: 2.0, to_scale: 0.0 })],
            ..Workload::constant()
        };
        falling.validate().unwrap();
        match falling.rate_at(100.0, 39_990_000, 40_000_000) {
            RateNow::Idle { until_us } => assert_eq!(until_us, 40_000_000),
            RateNow::Active { tps, .. } => {
                panic!("a nearly dead falling ramp should idle, got {tps} tx/s")
            }
        }
    }

    #[test]
    fn zero_rate_phase_idles_until_the_next_phase() {
        let w = Workload {
            phases: vec![
                phase(0, Arrival::Constant { scale: 0.0 }),
                phase(5_000_000, Arrival::Constant { scale: 1.0 }),
            ],
            ..Workload::constant()
        };
        w.validate().unwrap();
        match w.rate_at(100.0, 1_000_000, 60_000_000) {
            RateNow::Idle { until_us } => assert_eq!(until_us, 5_000_000),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn validation_rejects_malformed_workloads() {
        let bad = |w: Workload| w.validate().unwrap_err().to_string();

        let mut w = Workload::constant();
        w.phases.clear();
        assert!(bad(w).contains("at least one phase"));

        let w = Workload {
            phases: vec![phase(5, Arrival::Constant { scale: 1.0 })],
            ..Workload::constant()
        };
        assert!(bad(w).contains("start at 0"));

        let w = Workload {
            phases: vec![
                phase(0, Arrival::Constant { scale: 1.0 }),
                phase(0, Arrival::Constant { scale: 2.0 }),
            ],
            ..Workload::constant()
        };
        assert!(bad(w).contains("ascending"));

        let w = Workload {
            phases: vec![phase(0, Arrival::Constant { scale: 0.0 })],
            ..Workload::constant()
        };
        assert!(bad(w).contains("zero rate"));

        let w = Workload {
            phases: vec![phase(0, Arrival::OnOff { scale: 1.0, burst_secs: 0.0, idle_secs: 1.0 })],
            ..Workload::constant()
        };
        assert!(bad(w).contains("burst_secs"));

        // A burst below the 1 µs simulation grain would truncate to zero
        // simulated time and leave the phase silently idle forever.
        let w = Workload {
            phases: vec![phase(0, Arrival::OnOff { scale: 1.0, burst_secs: 1e-7, idle_secs: 1.0 })],
            ..Workload::constant()
        };
        assert!(bad(w).contains("at least 1 µs"));

        let w = Workload { spread: 0.5, ..Workload::constant() };
        assert!(bad(w).contains("spread"));

        let w = Workload { payload_bytes: MAX_PAYLOAD_BYTES + 1, ..Workload::constant() };
        assert!(bad(w).contains("payload_bytes"));
    }
}
