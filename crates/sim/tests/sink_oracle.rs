//! Property tests pinning the streaming histogram to the exact oracle.
//!
//! [`LatencySummary::from_micros`] buffers and sorts every sample — the
//! path the paper's numbers were originally computed with — and stays in
//! the tree exactly so the bounded-memory [`StreamingHistogram`] can be
//! checked against it: mean/stddev/max/count must match to floating
//! rounding, and the histogram percentiles must sit within one
//! sub-bucket (1/32 relative) above the exact nearest-rank value.

use hh_sim::{LatencySummary, StreamingHistogram};
use proptest::prelude::*;

/// One sub-bucket of relative slack: the histogram reports the bucket's
/// upper bound, at most `1/32` above the exact sample.
const BUCKET_EPS: f64 = 1.0 / 32.0;

fn check_against_oracle(samples: Vec<u64>) {
    let mut hist = StreamingHistogram::new();
    for &s in &samples {
        hist.record(s);
    }
    let got = hist.summary();
    let exact = LatencySummary::from_micros(samples);

    assert_eq!(got.count, exact.count);
    assert!((got.mean - exact.mean).abs() < 1e-6, "mean {} vs exact {}", got.mean, exact.mean);
    assert!(
        (got.stddev - exact.stddev).abs() < 1e-6,
        "stddev {} vs exact {}",
        got.stddev,
        exact.stddev
    );
    assert!((got.max - exact.max).abs() < 1e-9, "max {} vs exact {}", got.max, exact.max);
    for (name, estimate, oracle) in [("p50", got.p50, exact.p50), ("p95", got.p95, exact.p95)] {
        assert!(estimate + 1e-9 >= oracle, "{name} estimate {estimate} below exact {oracle}");
        assert!(
            estimate <= oracle * (1.0 + BUCKET_EPS) + 1e-9,
            "{name} estimate {estimate} more than one bucket above exact {oracle}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Arbitrary sample sets up to 100 simulated seconds of latency,
    /// including the empty and single-sample cases (length range starts
    /// at 0).
    fn histogram_tracks_oracle(samples in proptest::collection::vec(0u64..100_000_000, 0..300)) {
        check_against_oracle(samples);
    }

    /// Heavy-tailed inputs: mostly small values with occasional huge
    /// outliers stress the log-scale bucketing across many octaves.
    fn histogram_tracks_oracle_heavy_tail(
        small in proptest::collection::vec(0u64..1_000, 1..100),
        spikes in proptest::collection::vec(1_000_000u64..=10_000_000_000, 0..8),
    ) {
        let mut samples = small;
        samples.extend(spikes);
        check_against_oracle(samples);
    }
}

#[test]
fn empty_input_matches_oracle_exactly() {
    check_against_oracle(Vec::new());
    assert_eq!(StreamingHistogram::new().summary(), LatencySummary::default());
}

#[test]
fn single_sample_percentiles_are_exact() {
    // With one sample every percentile is that sample; the max clamp
    // makes the histogram exact here, not just within a bucket.
    for v in [0u64, 1, 31, 32, 500_000, 99_999_999] {
        let mut hist = StreamingHistogram::new();
        hist.record(v);
        let got = hist.summary();
        let exact = LatencySummary::from_micros(vec![v]);
        assert_eq!(got.count, 1);
        assert!((got.p50 - exact.p50).abs() < 1e-12, "p50 for {v}");
        assert!((got.p95 - exact.p95).abs() < 1e-12, "p95 for {v}");
        assert!((got.max - exact.max).abs() < 1e-12, "max for {v}");
        assert!((got.mean - exact.mean).abs() < 1e-12, "mean for {v}");
        assert!(got.stddev.abs() < 1e-12, "stddev for {v}");
    }
}
