//! Storage media behind the write-ahead log.

use parking_lot::Mutex;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// A byte log that can be appended to, read back whole, and truncated.
///
/// Implementations must make `append` atomic with respect to `read_all`
/// observed after a reopen: a torn tail may be incomplete, but previously
/// synced records must survive (the WAL's CRC framing detects the tear).
pub trait LogBackend {
    /// Appends raw bytes at the end of the log.
    ///
    /// # Errors
    ///
    /// Returns an I/O error if the medium rejects the write.
    fn append(&mut self, bytes: &[u8]) -> std::io::Result<()>;

    /// Reads the entire log contents.
    ///
    /// # Errors
    ///
    /// Returns an I/O error if the medium cannot be read.
    fn read_all(&self) -> std::io::Result<Vec<u8>>;

    /// Replaces the whole log with `bytes` (used by compaction).
    ///
    /// # Errors
    ///
    /// Returns an I/O error if the medium rejects the rewrite.
    fn rewrite(&mut self, bytes: &[u8]) -> std::io::Result<()>;

    /// Current log size in bytes.
    fn len(&self) -> usize;

    /// Whether the log is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Forces buffered writes to durable storage (fsync for file-backed
    /// media). Volatile backends have nothing to do; the graceful-shutdown
    /// path calls this so a node's final checkpoint survives power loss.
    ///
    /// # Errors
    ///
    /// Returns an I/O error if the medium cannot be synced.
    fn sync(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// In-memory backend with shared handles.
///
/// Cloning shares the underlying buffer, which is exactly what simulated
/// crash-recovery needs: the validator's volatile state dies, the backend
/// handle survives.
#[derive(Clone, Debug, Default)]
pub struct MemBackend {
    bytes: Arc<Mutex<Vec<u8>>>,
}

impl MemBackend {
    /// A fresh, empty in-memory log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Truncates the log to `len` bytes — test helper for simulating a torn
    /// (partially persisted) tail.
    pub fn truncate(&self, len: usize) {
        self.bytes.lock().truncate(len);
    }

    /// Flips one bit at `offset` — test helper for simulating corruption.
    pub fn corrupt(&self, offset: usize) {
        let mut bytes = self.bytes.lock();
        if let Some(b) = bytes.get_mut(offset) {
            *b ^= 0x01;
        }
    }
}

impl LogBackend for MemBackend {
    fn append(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        self.bytes.lock().extend_from_slice(bytes);
        Ok(())
    }

    fn read_all(&self) -> std::io::Result<Vec<u8>> {
        Ok(self.bytes.lock().clone())
    }

    fn rewrite(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        let mut guard = self.bytes.lock();
        guard.clear();
        guard.extend_from_slice(bytes);
        Ok(())
    }

    fn len(&self) -> usize {
        self.bytes.lock().len()
    }
}

/// File-system backend (append-mode writes, whole-file reads).
#[derive(Debug)]
pub struct FileBackend {
    path: PathBuf,
    file: File,
}

impl FileBackend {
    /// Opens (or creates) the log file at `path`.
    ///
    /// # Errors
    ///
    /// Returns an I/O error if the file cannot be opened or created.
    pub fn open(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new().create(true).append(true).read(true).open(&path)?;
        Ok(FileBackend { path, file })
    }

    /// The file path backing this log.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl LogBackend for FileBackend {
    fn append(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        self.file.write_all(bytes)?;
        self.file.flush()
    }

    fn read_all(&self) -> std::io::Result<Vec<u8>> {
        let mut f = File::open(&self.path)?;
        let mut out = Vec::new();
        f.read_to_end(&mut out)?;
        Ok(out)
    }

    fn rewrite(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        let mut f = OpenOptions::new().write(true).truncate(true).open(&self.path)?;
        f.write_all(bytes)?;
        f.flush()?;
        f.seek(SeekFrom::End(0))?;
        self.file = OpenOptions::new().append(true).read(true).open(&self.path)?;
        Ok(())
    }

    fn len(&self) -> usize {
        std::fs::metadata(&self.path).map(|m| m.len() as usize).unwrap_or(0)
    }

    fn sync(&mut self) -> std::io::Result<()> {
        self.file.sync_all()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_backend_shares_bytes_across_clones() {
        let a = MemBackend::new();
        let mut b = a.clone();
        b.append(b"hello").unwrap();
        assert_eq!(a.read_all().unwrap(), b"hello");
        assert_eq!(a.len(), 5);
    }

    #[test]
    fn mem_backend_rewrite_replaces() {
        let mut m = MemBackend::new();
        m.append(b"old").unwrap();
        m.rewrite(b"new!").unwrap();
        assert_eq!(m.read_all().unwrap(), b"new!");
    }

    #[test]
    fn file_backend_roundtrip() {
        let path = std::env::temp_dir().join(format!("hh-wal-test-{}", std::process::id()));
        let _ = std::fs::remove_file(&path);
        {
            let mut f = FileBackend::open(&path).unwrap();
            f.append(b"abc").unwrap();
            f.append(b"def").unwrap();
            assert_eq!(f.len(), 6);
        }
        {
            // Reopen, data persists, appends continue.
            let mut f = FileBackend::open(&path).unwrap();
            assert_eq!(f.read_all().unwrap(), b"abcdef");
            f.append(b"!").unwrap();
            assert_eq!(f.read_all().unwrap(), b"abcdef!");
            f.rewrite(b"xy").unwrap();
            assert_eq!(f.read_all().unwrap(), b"xy");
            f.append(b"z").unwrap();
            assert_eq!(f.read_all().unwrap(), b"xyz");
        }
        std::fs::remove_file(&path).unwrap();
    }
}
