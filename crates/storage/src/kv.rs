//! A log-structured key-value store over the WAL.

use crate::backend::LogBackend;
use crate::wal::{Wal, WalError};
use std::collections::BTreeMap;

/// Record tags in the KV log.
const TAG_PUT: u8 = 1;
const TAG_DEL: u8 = 2;

/// A small log-structured KV store: every mutation appends to the WAL; an
/// in-memory index serves reads; [`KvStore::compact`] rewrites the log to
/// the live set.
///
/// This is the RocksDB stand-in for components that want point lookups
/// (e.g. persisting per-epoch schedule state).
///
/// ```
/// use hh_storage::{KvStore, MemBackend};
///
/// let backend = MemBackend::new();
/// let mut kv = KvStore::open(backend.clone()).unwrap();
/// kv.put(b"leader-epoch", b"7").unwrap();
/// assert_eq!(kv.get(b"leader-epoch"), Some(&b"7"[..]));
///
/// // Reopen from the same bytes: state survives.
/// let kv2 = KvStore::open(backend).unwrap();
/// assert_eq!(kv2.get(b"leader-epoch"), Some(&b"7"[..]));
/// ```
#[derive(Debug)]
pub struct KvStore<B: LogBackend> {
    wal: Wal<B>,
    index: BTreeMap<Vec<u8>, Vec<u8>>,
    /// Mutations since the last compaction (compaction heuristic input).
    mutations: u64,
}

impl<B: LogBackend> KvStore<B> {
    /// Opens a store, replaying any existing log.
    ///
    /// # Errors
    ///
    /// Returns [`WalError::Io`] if the backend cannot be read.
    pub fn open(backend: B) -> Result<Self, WalError> {
        let wal = Wal::new(backend);
        let mut index = BTreeMap::new();
        for record in wal.replay()? {
            Self::apply(&mut index, &record);
        }
        Ok(KvStore { wal, index, mutations: 0 })
    }

    fn apply(index: &mut BTreeMap<Vec<u8>, Vec<u8>>, record: &[u8]) {
        if record.len() < 5 {
            return; // malformed; ignore
        }
        let tag = record[0];
        let key_len = u32::from_be_bytes(record[1..5].try_into().expect("4 bytes")) as usize;
        if record.len() < 5 + key_len {
            return;
        }
        let key = record[5..5 + key_len].to_vec();
        match tag {
            TAG_PUT => {
                let value = record[5 + key_len..].to_vec();
                index.insert(key, value);
            }
            TAG_DEL => {
                index.remove(&key);
            }
            _ => {}
        }
    }

    fn encode(tag: u8, key: &[u8], value: &[u8]) -> Vec<u8> {
        let mut rec = Vec::with_capacity(5 + key.len() + value.len());
        rec.push(tag);
        rec.extend_from_slice(&(key.len() as u32).to_be_bytes());
        rec.extend_from_slice(key);
        rec.extend_from_slice(value);
        rec
    }

    /// Inserts or overwrites `key`.
    ///
    /// # Errors
    ///
    /// Returns [`WalError::Io`] if the append fails; the in-memory index is
    /// only updated after a successful append (write-ahead discipline).
    pub fn put(&mut self, key: &[u8], value: &[u8]) -> Result<(), WalError> {
        self.wal.append(&Self::encode(TAG_PUT, key, value))?;
        self.index.insert(key.to_vec(), value.to_vec());
        self.mutations += 1;
        Ok(())
    }

    /// Deletes `key` (appends a tombstone).
    ///
    /// # Errors
    ///
    /// Returns [`WalError::Io`] if the append fails.
    pub fn delete(&mut self, key: &[u8]) -> Result<(), WalError> {
        self.wal.append(&Self::encode(TAG_DEL, key, b""))?;
        self.index.remove(key);
        self.mutations += 1;
        Ok(())
    }

    /// Looks up `key`.
    pub fn get(&self, key: &[u8]) -> Option<&[u8]> {
        self.index.get(key).map(|v| v.as_slice())
    }

    /// Number of live keys.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether no live keys exist.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Iterates live entries in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&[u8], &[u8])> {
        self.index.iter().map(|(k, v)| (k.as_slice(), v.as_slice()))
    }

    /// Rewrites the log to exactly the live set, dropping tombstones and
    /// overwritten versions.
    ///
    /// # Errors
    ///
    /// Returns [`WalError::Io`] if the rewrite fails.
    pub fn compact(&mut self) -> Result<(), WalError> {
        let records: Vec<Vec<u8>> =
            self.index.iter().map(|(k, v)| Self::encode(TAG_PUT, k, v)).collect();
        self.wal.compact_to(&records)?;
        self.mutations = 0;
        Ok(())
    }

    /// Mutations since the last compaction.
    pub fn mutations_since_compaction(&self) -> u64 {
        self.mutations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::MemBackend;

    #[test]
    fn put_get_delete() {
        let mut kv = KvStore::open(MemBackend::new()).unwrap();
        kv.put(b"a", b"1").unwrap();
        kv.put(b"b", b"2").unwrap();
        assert_eq!(kv.get(b"a"), Some(&b"1"[..]));
        kv.delete(b"a").unwrap();
        assert_eq!(kv.get(b"a"), None);
        assert_eq!(kv.len(), 1);
    }

    #[test]
    fn overwrite_keeps_latest() {
        let backend = MemBackend::new();
        let mut kv = KvStore::open(backend.clone()).unwrap();
        kv.put(b"k", b"v1").unwrap();
        kv.put(b"k", b"v2").unwrap();
        assert_eq!(kv.get(b"k"), Some(&b"v2"[..]));
        let reopened = KvStore::open(backend).unwrap();
        assert_eq!(reopened.get(b"k"), Some(&b"v2"[..]));
    }

    #[test]
    fn tombstones_survive_reopen() {
        let backend = MemBackend::new();
        let mut kv = KvStore::open(backend.clone()).unwrap();
        kv.put(b"gone", b"x").unwrap();
        kv.delete(b"gone").unwrap();
        let reopened = KvStore::open(backend).unwrap();
        assert_eq!(reopened.get(b"gone"), None);
        assert!(reopened.is_empty());
    }

    #[test]
    fn compaction_preserves_live_set_and_shrinks() {
        let backend = MemBackend::new();
        let mut kv = KvStore::open(backend.clone()).unwrap();
        for i in 0..50u32 {
            kv.put(&i.to_be_bytes(), &[0u8; 64]).unwrap();
        }
        for i in 0..40u32 {
            kv.delete(&i.to_be_bytes()).unwrap();
        }
        let before = kv.wal.size_bytes();
        kv.compact().unwrap();
        assert!(kv.wal.size_bytes() < before);
        assert_eq!(kv.len(), 10);
        let reopened = KvStore::open(backend).unwrap();
        assert_eq!(reopened.len(), 10);
        for i in 40..50u32 {
            assert_eq!(reopened.get(&i.to_be_bytes()), Some(&[0u8; 64][..]));
        }
    }

    #[test]
    fn iter_is_key_ordered() {
        let mut kv = KvStore::open(MemBackend::new()).unwrap();
        kv.put(b"b", b"2").unwrap();
        kv.put(b"a", b"1").unwrap();
        kv.put(b"c", b"3").unwrap();
        let keys: Vec<&[u8]> = kv.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec![&b"a"[..], &b"b"[..], &b"c"[..]]);
    }

    #[test]
    fn binary_keys_and_values() {
        let mut kv = KvStore::open(MemBackend::new()).unwrap();
        let key = [0u8, 255, 1, 254];
        let val = vec![7u8; 300];
        kv.put(&key, &val).unwrap();
        assert_eq!(kv.get(&key), Some(val.as_slice()));
    }
}
