//! Persistence substrate for the HammerHead reproduction.
//!
//! The production system persists its data structures in RocksDB (§4); the
//! protocol only needs durable, replayable state for crash-recovery, which
//! this crate provides from scratch:
//!
//! * [`Wal`] — a write-ahead log of CRC-framed records that tolerates torn
//!   tails (a crash mid-append loses at most the incomplete record);
//! * [`MemBackend`] / [`FileBackend`] — storage media. The memory backend
//!   hands out shareable handles so a simulated validator can "crash" (drop
//!   all volatile state) and "restart" against the same bytes;
//! * [`KvStore`] — a log-structured key-value store with tombstones and
//!   compaction, for components that want point lookups;
//! * [`ValidatorStore`] — the typed layer validators actually use: append
//!   every delivered vertex and periodic commit checkpoints; recovery
//!   returns vertices in insertion-safe order for deterministic replay.
//!
//! # Example
//!
//! ```
//! use hh_storage::{MemBackend, Wal};
//!
//! let backend = MemBackend::new();
//! let mut wal = Wal::new(backend.clone());
//! wal.append(b"record-1").unwrap();
//! wal.append(b"record-2").unwrap();
//!
//! // "Crash" and reopen from the same bytes.
//! let recovered: Vec<Vec<u8>> = Wal::new(backend).replay().unwrap();
//! assert_eq!(recovered, vec![b"record-1".to_vec(), b"record-2".to_vec()]);
//! ```

#![deny(rustdoc::broken_intra_doc_links)]

mod backend;
mod kv;
mod validator_store;
mod wal;

pub use backend::{FileBackend, LogBackend, MemBackend};
pub use kv::KvStore;
pub use validator_store::{RecoveredState, StoreRecord, ValidatorStore};
pub use wal::{Wal, WalError};
