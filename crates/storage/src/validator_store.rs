//! Typed persistence for a validator: vertices + commit checkpoints.

use crate::backend::LogBackend;
use crate::wal::{Wal, WalError};
use hh_crypto::Digest;
use hh_types::codec::{decode_from_slice, encode_to_vec, Decoder, Encode, EncodeExt};
use hh_types::{TypeError, Vertex};

/// A record in the validator's durable log.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StoreRecord {
    /// A vertex delivered by the broadcast layer.
    Vertex(Vertex),
    /// A commit checkpoint: `(commit_index, chain_hash)`. Written
    /// periodically so recovery can cross-check the recomputed commit
    /// sequence against what this validator had observed before crashing.
    CommitCheckpoint {
        /// Index of the last commit covered by this checkpoint.
        commit_index: u64,
        /// The engine's commit chain hash at that point.
        chain_hash: Digest,
    },
}

impl Encode for StoreRecord {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            StoreRecord::Vertex(v) => {
                buf.put_u8(1);
                v.encode(buf);
            }
            StoreRecord::CommitCheckpoint { commit_index, chain_hash } => {
                buf.put_u8(2);
                buf.put_u64(*commit_index);
                chain_hash.encode(buf);
            }
        }
    }

    fn decode(d: &mut Decoder<'_>) -> Result<Self, TypeError> {
        match d.take_u8()? {
            1 => Ok(StoreRecord::Vertex(Vertex::decode(d)?)),
            2 => Ok(StoreRecord::CommitCheckpoint {
                commit_index: d.take_u64()?,
                chain_hash: Digest::decode(d)?,
            }),
            _ => Err(TypeError::Decode("unknown store record tag")),
        }
    }
}

/// Everything recovered from a validator's log.
#[derive(Clone, Debug, Default)]
pub struct RecoveredState {
    /// Unique vertices in insertion-safe order (ascending round; parents
    /// always precede children because delivery respects causality and
    /// recovery re-sorts by round).
    pub vertices: Vec<Vertex>,
    /// The latest commit checkpoint, if any.
    pub last_checkpoint: Option<(u64, Digest)>,
}

/// The durable log a validator appends to as it runs.
///
/// Recovery strategy (used by `hammerhead::Validator::on_restart`): replay
/// vertices into a fresh DAG and a fresh consensus engine in round order.
/// Commits are *recomputed*, not trusted from disk; the checkpoint is a
/// cross-check that the recovered sequence extends the pre-crash one.
#[derive(Debug)]
pub struct ValidatorStore<B: LogBackend> {
    wal: Wal<B>,
    /// Reused encode buffer: persisting a vertex is once-per-delivery on
    /// the simulator's hot path, so the record is serialized in place
    /// rather than through a fresh allocation per append.
    scratch: Vec<u8>,
}

impl<B: LogBackend> ValidatorStore<B> {
    /// Opens the store over `backend`.
    pub fn new(backend: B) -> Self {
        ValidatorStore { wal: Wal::new(backend), scratch: Vec::new() }
    }

    /// Persists a delivered vertex.
    ///
    /// # Errors
    ///
    /// Returns [`WalError::Io`] if the medium rejects the append.
    pub fn persist_vertex(&mut self, vertex: &Vertex) -> Result<(), WalError> {
        // Byte-for-byte the encoding of `StoreRecord::Vertex(..)`, written
        // without cloning the vertex into a temporary record. The vertex's
        // memoized canonical encoding makes every persist after the first
        // holder's (across all validators sharing the `Arc`) a plain copy.
        self.scratch.clear();
        self.scratch.put_u8(1);
        self.scratch.extend_from_slice(vertex.encoded_bytes());
        self.wal.append(&self.scratch)
    }

    /// Persists a commit checkpoint.
    ///
    /// # Errors
    ///
    /// Returns [`WalError::Io`] if the medium rejects the append.
    pub fn persist_checkpoint(
        &mut self,
        commit_index: u64,
        chain_hash: Digest,
    ) -> Result<(), WalError> {
        self.wal.append(&encode_to_vec(&StoreRecord::CommitCheckpoint { commit_index, chain_hash }))
    }

    /// Forces everything appended so far to durable storage — the
    /// graceful-shutdown flush.
    ///
    /// # Errors
    ///
    /// Returns [`WalError::Io`] if the medium cannot sync.
    pub fn sync(&mut self) -> Result<(), WalError> {
        self.wal.sync()
    }

    /// Replays the log into a [`RecoveredState`].
    ///
    /// Duplicate vertices (possible if a crash interrupted between delivery
    /// and dedup) are dropped; vertices are returned in ascending
    /// `(round, author)` order so they can be re-inserted directly.
    ///
    /// # Errors
    ///
    /// Returns [`WalError::Io`] if the medium cannot be read. Undecodable
    /// records (torn writes already excluded by the WAL) are skipped.
    pub fn recover(&self) -> Result<RecoveredState, WalError> {
        let mut state = RecoveredState::default();
        let mut seen = std::collections::HashSet::new();
        for raw in self.wal.replay()? {
            match decode_from_slice::<StoreRecord>(&raw) {
                Ok(StoreRecord::Vertex(v)) => {
                    if seen.insert(v.digest()) {
                        state.vertices.push(v);
                    }
                }
                Ok(StoreRecord::CommitCheckpoint { commit_index, chain_hash }) => {
                    state.last_checkpoint = Some((commit_index, chain_hash));
                }
                Err(_) => {}
            }
        }
        state.vertices.sort_by_key(|v| (v.round(), v.author()));
        Ok(state)
    }

    /// Size of the underlying log in bytes.
    pub fn size_bytes(&self) -> usize {
        self.wal.size_bytes()
    }

    /// Borrows the backend (to clone a [`crate::MemBackend`] handle).
    pub fn backend(&self) -> &B {
        self.wal.backend()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::MemBackend;
    use hh_types::{Block, Committee, Round, ValidatorId};

    fn vertex(c: &Committee, round: u64, author: u16, parents: Vec<Digest>) -> Vertex {
        Vertex::new(
            Round(round),
            ValidatorId(author),
            Block::empty(),
            parents,
            &c.keypair(ValidatorId(author)),
        )
    }

    #[test]
    fn vertices_roundtrip_in_round_order() {
        let c = Committee::new_equal_stake(4);
        let backend = MemBackend::new();
        let mut store = ValidatorStore::new(backend.clone());

        let genesis: Vec<Vertex> = (0..4).map(|i| vertex(&c, 0, i, vec![])).collect();
        let parents: Vec<Digest> = genesis.iter().map(|v| v.digest()).collect();
        let child = vertex(&c, 1, 0, parents);

        // Persist child first: recovery must still order by round.
        store.persist_vertex(&child).unwrap();
        for g in &genesis {
            store.persist_vertex(g).unwrap();
        }

        let recovered = ValidatorStore::new(backend).recover().unwrap();
        assert_eq!(recovered.vertices.len(), 5);
        assert_eq!(recovered.vertices.last().unwrap().digest(), child.digest());
        let rounds: Vec<u64> = recovered.vertices.iter().map(|v| v.round().0).collect();
        assert_eq!(rounds, vec![0, 0, 0, 0, 1]);
    }

    #[test]
    fn duplicates_deduplicated() {
        let c = Committee::new_equal_stake(4);
        let backend = MemBackend::new();
        let mut store = ValidatorStore::new(backend.clone());
        let v = vertex(&c, 0, 0, vec![]);
        store.persist_vertex(&v).unwrap();
        store.persist_vertex(&v).unwrap();
        let recovered = ValidatorStore::new(backend).recover().unwrap();
        assert_eq!(recovered.vertices.len(), 1);
    }

    #[test]
    fn latest_checkpoint_wins() {
        let backend = MemBackend::new();
        let mut store = ValidatorStore::new(backend.clone());
        store.persist_checkpoint(3, hh_crypto::sha256(b"a")).unwrap();
        store.persist_checkpoint(7, hh_crypto::sha256(b"b")).unwrap();
        let recovered = ValidatorStore::new(backend).recover().unwrap();
        assert_eq!(recovered.last_checkpoint, Some((7, hh_crypto::sha256(b"b"))));
    }

    #[test]
    fn torn_tail_preserves_prefix() {
        let c = Committee::new_equal_stake(4);
        let backend = MemBackend::new();
        let mut store = ValidatorStore::new(backend.clone());
        store.persist_vertex(&vertex(&c, 0, 0, vec![])).unwrap();
        store.persist_vertex(&vertex(&c, 0, 1, vec![])).unwrap();
        backend.truncate(backend.read_all().unwrap().len() - 5);
        let recovered = ValidatorStore::new(backend).recover().unwrap();
        assert_eq!(recovered.vertices.len(), 1);
        assert_eq!(recovered.vertices[0].author(), ValidatorId(0));
    }

    #[test]
    fn empty_store_recovers_empty() {
        let recovered = ValidatorStore::new(MemBackend::new()).recover().unwrap();
        assert!(recovered.vertices.is_empty());
        assert!(recovered.last_checkpoint.is_none());
    }
}
