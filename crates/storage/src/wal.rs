//! The CRC-framed write-ahead log.

use crate::backend::LogBackend;
use hh_crypto::crc32;
use std::fmt;

/// Frame header: 4-byte length + 4-byte CRC32 of the payload.
const HEADER_LEN: usize = 8;

/// Maximum record size (guards recovery against absurd length fields from
/// corruption).
const MAX_RECORD_LEN: u32 = 1 << 26; // 64 MiB

/// Errors from WAL operations.
#[derive(Debug)]
pub enum WalError {
    /// The medium failed.
    Io(std::io::Error),
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "wal i/o error: {e}"),
        }
    }
}

impl std::error::Error for WalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WalError::Io(e) => Some(e),
        }
    }
}

impl From<std::io::Error> for WalError {
    fn from(e: std::io::Error) -> Self {
        WalError::Io(e)
    }
}

/// A write-ahead log of length+CRC framed records.
///
/// Replay stops silently at the first torn or corrupted frame: everything
/// before it is intact (CRC-verified), everything after is discarded —
/// which models exactly what a crash mid-append may leave behind.
#[derive(Debug)]
pub struct Wal<B: LogBackend> {
    backend: B,
    records: u64,
    /// Reused framing buffer; appends happen once per persisted vertex on
    /// the simulator's hot path, so the frame is assembled in place.
    frame: Vec<u8>,
}

impl<B: LogBackend> Wal<B> {
    /// Wraps a backend. Existing contents are preserved (call
    /// [`Wal::replay`] to read them).
    pub fn new(backend: B) -> Self {
        Wal { backend, records: 0, frame: Vec::new() }
    }

    /// Appends one record.
    ///
    /// # Errors
    ///
    /// Returns [`WalError::Io`] if the backend write fails.
    pub fn append(&mut self, record: &[u8]) -> Result<(), WalError> {
        self.frame.clear();
        self.frame.reserve(HEADER_LEN + record.len());
        self.frame.extend_from_slice(&(record.len() as u32).to_be_bytes());
        self.frame.extend_from_slice(&crc32(record).to_be_bytes());
        self.frame.extend_from_slice(record);
        self.backend.append(&self.frame)?;
        self.records += 1;
        Ok(())
    }

    /// Reads every intact record from the start of the log.
    ///
    /// # Errors
    ///
    /// Returns [`WalError::Io`] if the backend read fails. Torn or
    /// corrupted tails are not errors; replay simply stops there.
    pub fn replay(&self) -> Result<Vec<Vec<u8>>, WalError> {
        let bytes = self.backend.read_all()?;
        let mut out = Vec::new();
        let mut pos = 0usize;
        while pos + HEADER_LEN <= bytes.len() {
            let len = u32::from_be_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes"));
            let crc = u32::from_be_bytes(bytes[pos + 4..pos + 8].try_into().expect("4 bytes"));
            if len > MAX_RECORD_LEN {
                break; // corrupted length field
            }
            let start = pos + HEADER_LEN;
            let end = start + len as usize;
            if end > bytes.len() {
                break; // torn tail
            }
            let payload = &bytes[start..end];
            if crc32(payload) != crc {
                break; // corrupted payload
            }
            out.push(payload.to_vec());
            pos = end;
        }
        Ok(out)
    }

    /// Forces the log to durable storage (see [`LogBackend::sync`]).
    ///
    /// # Errors
    ///
    /// Returns [`WalError::Io`] if the backend cannot sync.
    pub fn sync(&mut self) -> Result<(), WalError> {
        self.backend.sync().map_err(WalError::Io)
    }

    /// Rewrites the log to contain exactly `records` (compaction).
    ///
    /// # Errors
    ///
    /// Returns [`WalError::Io`] if the backend rewrite fails.
    pub fn compact_to(&mut self, records: &[Vec<u8>]) -> Result<(), WalError> {
        let mut bytes = Vec::new();
        for r in records {
            bytes.extend_from_slice(&(r.len() as u32).to_be_bytes());
            bytes.extend_from_slice(&crc32(r).to_be_bytes());
            bytes.extend_from_slice(r);
        }
        self.backend.rewrite(&bytes)?;
        self.records = records.len() as u64;
        Ok(())
    }

    /// Records appended through this handle (not counting pre-existing).
    pub fn appended(&self) -> u64 {
        self.records
    }

    /// Size of the log in bytes.
    pub fn size_bytes(&self) -> usize {
        self.backend.len()
    }

    /// Borrows the backend (e.g. to clone a [`crate::MemBackend`] handle).
    pub fn backend(&self) -> &B {
        &self.backend
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::MemBackend;

    #[test]
    fn append_replay_roundtrip() {
        let mem = MemBackend::new();
        let mut wal = Wal::new(mem.clone());
        wal.append(b"alpha").unwrap();
        wal.append(b"").unwrap(); // empty records are legal
        wal.append(&[0xFFu8; 1000]).unwrap();
        let records = Wal::new(mem).replay().unwrap();
        assert_eq!(records.len(), 3);
        assert_eq!(records[0], b"alpha");
        assert_eq!(records[1], b"");
        assert_eq!(records[2], vec![0xFFu8; 1000]);
    }

    #[test]
    fn torn_tail_drops_only_last_record() {
        let mem = MemBackend::new();
        let mut wal = Wal::new(mem.clone());
        wal.append(b"keep-1").unwrap();
        wal.append(b"keep-2").unwrap();
        wal.append(b"torn-record").unwrap();
        // Chop 3 bytes off the end: the last frame is incomplete.
        mem.truncate(mem.len() - 3);
        let records = Wal::new(mem).replay().unwrap();
        assert_eq!(records, vec![b"keep-1".to_vec(), b"keep-2".to_vec()]);
    }

    #[test]
    fn corrupted_payload_stops_replay() {
        let mem = MemBackend::new();
        let mut wal = Wal::new(mem.clone());
        wal.append(b"good").unwrap();
        wal.append(b"bad-soon").unwrap();
        wal.append(b"unreachable").unwrap();
        // Corrupt one byte inside the second record's payload.
        let offset = (8 + 4) + 8 + 2;
        mem.corrupt(offset);
        let records = Wal::new(mem).replay().unwrap();
        assert_eq!(records, vec![b"good".to_vec()]);
    }

    #[test]
    fn corrupted_length_field_stops_replay() {
        let mem = MemBackend::new();
        let mut wal = Wal::new(mem.clone());
        wal.append(b"good").unwrap();
        // Append garbage that claims a gigantic length.
        let mut garbage = Vec::new();
        garbage.extend_from_slice(&u32::MAX.to_be_bytes());
        garbage.extend_from_slice(&[0u8; 12]);
        use crate::backend::LogBackend;
        let mut raw = mem.clone();
        raw.append(&garbage).unwrap();
        let records = Wal::new(mem).replay().unwrap();
        assert_eq!(records, vec![b"good".to_vec()]);
    }

    #[test]
    fn compaction_rewrites_log() {
        let mem = MemBackend::new();
        let mut wal = Wal::new(mem.clone());
        for i in 0..100u32 {
            wal.append(&i.to_be_bytes()).unwrap();
        }
        let before = wal.size_bytes();
        wal.compact_to(&[b"snapshot".to_vec()]).unwrap();
        assert!(wal.size_bytes() < before);
        // Appends after compaction still work.
        wal.append(b"tail").unwrap();
        let records = Wal::new(mem).replay().unwrap();
        assert_eq!(records, vec![b"snapshot".to_vec(), b"tail".to_vec()]);
    }

    #[test]
    fn empty_log_replays_empty() {
        let wal = Wal::new(MemBackend::new());
        assert!(wal.replay().unwrap().is_empty());
    }
}
