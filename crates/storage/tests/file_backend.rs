//! File-backed WAL durability tests: torn writes against a *real* file,
//! and bit-equivalence between the file and memory backends.
//!
//! The in-crate unit tests cover these properties on `MemBackend`
//! (where truncation is a method call); this suite proves the same
//! guarantees hold when the log is an actual file on disk — the form a
//! crashed `hh-node` leaves behind.

use hh_storage::{FileBackend, LogBackend, MemBackend, ValidatorStore, Wal};
use hh_types::{Block, Committee, Round, ValidatorId, Vertex};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// A unique scratch file per test, removed on drop.
struct TempFile(PathBuf);

impl TempFile {
    fn new(tag: &str) -> Self {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let path = std::env::temp_dir().join(format!(
            "hh-file-backend-{}-{}-{tag}.log",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::SeqCst)
        ));
        let _ = std::fs::remove_file(&path);
        TempFile(path)
    }
}

impl Drop for TempFile {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

fn vertex(c: &Committee, round: u64, author: u16) -> Vertex {
    Vertex::new(
        Round(round),
        ValidatorId(author),
        Block::empty(),
        vec![],
        &c.keypair(ValidatorId(author)),
    )
}

/// Truncating the file mid-record (a torn write at crash time) must
/// leave every preceding record replayable and drop only the tail.
#[test]
fn torn_tail_on_disk_recovers_prefix() {
    let tmp = TempFile::new("torn");
    let mut wal = Wal::new(FileBackend::open(&tmp.0).unwrap());
    for i in 0..5u8 {
        wal.append(&[i; 64]).unwrap();
    }
    drop(wal);

    // Cut the file inside the last record's payload.
    let full = std::fs::metadata(&tmp.0).unwrap().len();
    let file = std::fs::OpenOptions::new().write(true).open(&tmp.0).unwrap();
    file.set_len(full - 10).unwrap();
    drop(file);

    let wal = Wal::new(FileBackend::open(&tmp.0).unwrap());
    let records = wal.replay().unwrap();
    assert_eq!(records.len(), 4, "only the torn tail record is lost");
    for (i, r) in records.iter().enumerate() {
        assert_eq!(r.as_slice(), &[i as u8; 64]);
    }
}

/// Truncating inside a record *header* (torn before the length landed)
/// must behave the same way.
#[test]
fn torn_header_on_disk_recovers_prefix() {
    let tmp = TempFile::new("torn-header");
    let mut wal = Wal::new(FileBackend::open(&tmp.0).unwrap());
    wal.append(b"first").unwrap();
    wal.append(b"second").unwrap();
    drop(wal);

    // A record is 8 header bytes + payload; leave the first record and
    // 3 bytes of the second's header.
    let first_len = 8 + b"first".len() as u64;
    let file = std::fs::OpenOptions::new().write(true).open(&tmp.0).unwrap();
    file.set_len(first_len + 3).unwrap();
    drop(file);

    let wal = Wal::new(FileBackend::open(&tmp.0).unwrap());
    let records = wal.replay().unwrap();
    assert_eq!(records.len(), 1);
    assert_eq!(records[0].as_slice(), b"first");
}

/// Appending resumes cleanly after a torn-tail recovery: the WAL built
/// on the truncated file accepts new records and replays prefix + new.
#[test]
fn appends_resume_after_torn_recovery() {
    let tmp = TempFile::new("resume");
    let mut wal = Wal::new(FileBackend::open(&tmp.0).unwrap());
    wal.append(b"keep").unwrap();
    wal.append(b"lost").unwrap();
    drop(wal);

    let full = std::fs::metadata(&tmp.0).unwrap().len();
    let file = std::fs::OpenOptions::new().write(true).open(&tmp.0).unwrap();
    file.set_len(full - 2).unwrap();
    drop(file);

    // The torn tail is garbage bytes mid-file; recovery is read-side
    // (replay stops at the tear), and compaction rewrites the log to
    // just the valid prefix, after which appends are replayable again.
    let mut wal = Wal::new(FileBackend::open(&tmp.0).unwrap());
    let prefix = wal.replay().unwrap();
    assert_eq!(prefix.len(), 1);
    wal.compact_to(&prefix).unwrap();
    wal.append(b"after").unwrap();
    wal.sync().unwrap();

    let records = Wal::new(FileBackend::open(&tmp.0).unwrap()).replay().unwrap();
    let payloads: Vec<&[u8]> = records.iter().map(|r| r.as_slice()).collect();
    assert_eq!(payloads, vec![b"keep".as_slice(), b"after".as_slice()]);
}

/// The same event sequence through `ValidatorStore` must produce
/// bit-identical logs on the memory and file backends, and recover to
/// identical state — so every simulator persistence test transfers to
/// the real node's on-disk format verbatim.
#[test]
fn file_and_mem_backends_are_bit_equivalent() {
    let c = Committee::new_equal_stake(4);
    let tmp = TempFile::new("equiv");
    let mem = MemBackend::new();
    let mut on_disk = ValidatorStore::new(FileBackend::open(&tmp.0).unwrap());
    let mut in_mem = ValidatorStore::new(mem.clone());

    for round in 0..3u64 {
        for author in 0..4u16 {
            let v = vertex(&c, round, author);
            on_disk.persist_vertex(&v).unwrap();
            in_mem.persist_vertex(&v).unwrap();
        }
        let hash = hh_crypto::sha256(&round.to_be_bytes());
        on_disk.persist_checkpoint(round, hash).unwrap();
        in_mem.persist_checkpoint(round, hash).unwrap();
    }
    on_disk.sync().unwrap();

    let disk_bytes = std::fs::read(&tmp.0).unwrap();
    let mem_bytes = mem.read_all().unwrap();
    assert_eq!(disk_bytes, mem_bytes, "backends diverged on identical event sequences");

    let from_disk = ValidatorStore::new(FileBackend::open(&tmp.0).unwrap()).recover().unwrap();
    let from_mem = ValidatorStore::new(mem).recover().unwrap();
    assert_eq!(from_disk.vertices, from_mem.vertices);
    assert_eq!(from_disk.last_checkpoint, from_mem.last_checkpoint);
    assert_eq!(from_disk.vertices.len(), 12);
    assert_eq!(from_disk.last_checkpoint.map(|(i, _)| i), Some(2));
}

/// `sync()` is the graceful-shutdown flush: it must succeed on a live
/// file store and everything appended before it must be visible to an
/// independent reopen.
#[test]
fn sync_then_reopen_sees_everything() {
    let c = Committee::new_equal_stake(4);
    let tmp = TempFile::new("sync");
    let mut store = ValidatorStore::new(FileBackend::open(&tmp.0).unwrap());
    store.persist_vertex(&vertex(&c, 0, 1)).unwrap();
    store.persist_checkpoint(0, hh_crypto::sha256(b"cp")).unwrap();
    store.sync().unwrap();

    let recovered = ValidatorStore::new(FileBackend::open(&tmp.0).unwrap()).recover().unwrap();
    assert_eq!(recovered.vertices.len(), 1);
    assert!(recovered.last_checkpoint.is_some());
}
