//! Deterministic binary codec.
//!
//! A small hand-rolled encoding used for wire messages and the storage WAL.
//! All integers are big-endian fixed width; collections are a `u32` length
//! prefix followed by the elements. The format is byte-stable across runs,
//! which the deterministic simulator and the WAL recovery tests rely on.
//!
//! The workspace deliberately avoids `serde` (see `DESIGN.md` §5): the codec
//! is ~200 lines, has no derive machinery, and its determinism is directly
//! testable.
//!
//! # Example
//!
//! ```
//! use hh_types::codec::{encode_to_vec, decode_from_slice};
//!
//! let v: Vec<u64> = vec![1, 2, 3];
//! let bytes = encode_to_vec(&v);
//! let back: Vec<u64> = decode_from_slice(&bytes).unwrap();
//! assert_eq!(v, back);
//! ```

use crate::TypeError;
use hh_crypto::{Digest, Signature};

/// Maximum number of elements a decoded collection may claim. Guards the
/// decoder against hostile length prefixes allocating unbounded memory.
pub const MAX_COLLECTION_LEN: u32 = 1 << 24;

/// Types encodable to / decodable from the deterministic binary format.
pub trait Encode: Sized {
    /// Appends the encoding of `self` to `buf`.
    fn encode(&self, buf: &mut Vec<u8>);

    /// Decodes a value from the front of `d`.
    ///
    /// # Errors
    ///
    /// Returns [`TypeError::Decode`] when the buffer is truncated or
    /// malformed.
    fn decode(d: &mut Decoder<'_>) -> Result<Self, TypeError>;
}

/// Encodes `value` into a fresh buffer.
pub fn encode_to_vec<T: Encode>(value: &T) -> Vec<u8> {
    let mut buf = Vec::new();
    value.encode(&mut buf);
    buf
}

/// Decodes exactly one `T` from `bytes`, rejecting trailing garbage.
///
/// # Errors
///
/// Returns [`TypeError::Decode`] on truncation, malformed content, or
/// leftover bytes.
pub fn decode_from_slice<T: Encode>(bytes: &[u8]) -> Result<T, TypeError> {
    let mut d = Decoder::new(bytes);
    let value = T::decode(&mut d)?;
    if !d.is_empty() {
        return Err(TypeError::Decode("trailing bytes"));
    }
    Ok(value)
}

/// Encodes `value` as a checksummed wire frame: the payload followed by
/// a big-endian CRC-32 trailer over it. The frame is what travels on a
/// (simulated) link; [`decode_framed`] verifies the trailer before
/// touching the payload, so in-flight bit flips die here instead of
/// surfacing as a different valid message.
pub fn encode_framed<T: Encode>(value: &T) -> Vec<u8> {
    hh_crypto::prof::time_codec(|| {
        let mut buf = Vec::new();
        value.encode(&mut buf);
        let crc = hh_crypto::crc32(&buf);
        buf.extend_from_slice(&crc.to_be_bytes());
        buf
    })
}

/// Decodes one checksummed wire frame produced by [`encode_framed`].
///
/// # Errors
///
/// Returns [`TypeError::Decode`] when the frame is shorter than the
/// trailer, the CRC-32 does not match the payload, or the payload
/// itself is truncated, malformed, or has leftover bytes.
pub fn decode_framed<T: Encode>(frame: &[u8]) -> Result<T, TypeError> {
    hh_crypto::prof::time_codec(|| {
        if frame.len() < 4 {
            return Err(TypeError::Decode("frame shorter than its checksum"));
        }
        let (payload, trailer) = frame.split_at(frame.len() - 4);
        let expected = u32::from_be_bytes(trailer.try_into().expect("4-byte trailer"));
        if hh_crypto::crc32(payload) != expected {
            return Err(TypeError::Decode("frame checksum mismatch"));
        }
        decode_from_slice(payload)
    })
}

/// A cursor over bytes being decoded.
#[derive(Debug)]
pub struct Decoder<'a> {
    bytes: &'a [u8],
}

impl<'a> Decoder<'a> {
    /// Wraps `bytes` for decoding.
    pub fn new(bytes: &'a [u8]) -> Self {
        Decoder { bytes }
    }

    /// Remaining undecoded byte count.
    pub fn remaining(&self) -> usize {
        self.bytes.len()
    }

    /// Whether all bytes have been consumed.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], TypeError> {
        if self.bytes.len() < n {
            return Err(TypeError::Decode("unexpected end of input"));
        }
        let (head, tail) = self.bytes.split_at(n);
        self.bytes = tail;
        Ok(head)
    }

    /// Reads one byte.
    pub fn take_u8(&mut self) -> Result<u8, TypeError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a big-endian `u16`.
    pub fn take_u16(&mut self) -> Result<u16, TypeError> {
        Ok(u16::from_be_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Reads a big-endian `u32`.
    pub fn take_u32(&mut self) -> Result<u32, TypeError> {
        Ok(u32::from_be_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a big-endian `u64`.
    pub fn take_u64(&mut self) -> Result<u64, TypeError> {
        Ok(u64::from_be_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads exactly 32 bytes.
    pub fn take_array32(&mut self) -> Result<[u8; 32], TypeError> {
        Ok(self.take(32)?.try_into().unwrap())
    }

    /// Reads a length-prefixed byte string.
    pub fn take_bytes(&mut self) -> Result<Vec<u8>, TypeError> {
        let len = self.take_u32()?;
        if len > MAX_COLLECTION_LEN {
            return Err(TypeError::Decode("collection length exceeds limit"));
        }
        Ok(self.take(len as usize)?.to_vec())
    }
}

/// Convenience writers on `Vec<u8>`.
pub trait EncodeExt {
    /// Appends one byte.
    fn put_u8(&mut self, v: u8);
    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16);
    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32);
    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64);
    /// Appends a length-prefixed byte string.
    fn put_bytes(&mut self, v: &[u8]);
}

impl EncodeExt for Vec<u8> {
    fn put_u8(&mut self, v: u8) {
        self.push(v);
    }
    fn put_u16(&mut self, v: u16) {
        self.extend_from_slice(&v.to_be_bytes());
    }
    fn put_u32(&mut self, v: u32) {
        self.extend_from_slice(&v.to_be_bytes());
    }
    fn put_u64(&mut self, v: u64) {
        self.extend_from_slice(&v.to_be_bytes());
    }
    fn put_bytes(&mut self, v: &[u8]) {
        self.put_u32(v.len() as u32);
        self.extend_from_slice(v);
    }
}

impl Encode for u8 {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.put_u8(*self);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, TypeError> {
        d.take_u8()
    }
}

impl Encode for u16 {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.put_u16(*self);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, TypeError> {
        d.take_u16()
    }
}

impl Encode for u32 {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.put_u32(*self);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, TypeError> {
        d.take_u32()
    }
}

impl Encode for u64 {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.put_u64(*self);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, TypeError> {
        d.take_u64()
    }
}

impl Encode for bool {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.put_u8(*self as u8);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, TypeError> {
        match d.take_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(TypeError::Decode("invalid bool")),
        }
    }
}

impl<T: Encode> Encode for Vec<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.put_u32(self.len() as u32);
        for item in self {
            item.encode(buf);
        }
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, TypeError> {
        let len = d.take_u32()?;
        if len > MAX_COLLECTION_LEN {
            return Err(TypeError::Decode("collection length exceeds limit"));
        }
        // Don't trust the claimed length for pre-allocation beyond what the
        // remaining bytes could possibly hold.
        let cap = (len as usize).min(d.remaining());
        let mut out = Vec::with_capacity(cap);
        for _ in 0..len {
            out.push(T::decode(d)?);
        }
        Ok(out)
    }
}

impl<T: Encode> Encode for std::sync::Arc<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        (**self).encode(buf);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, TypeError> {
        Ok(std::sync::Arc::new(T::decode(d)?))
    }
}

impl<T: Encode> Encode for Option<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            None => buf.put_u8(0),
            Some(v) => {
                buf.put_u8(1);
                v.encode(buf);
            }
        }
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, TypeError> {
        match d.take_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(d)?)),
            _ => Err(TypeError::Decode("invalid option tag")),
        }
    }
}

impl<A: Encode, B: Encode> Encode for (A, B) {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
        self.1.encode(buf);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, TypeError> {
        Ok((A::decode(d)?, B::decode(d)?))
    }
}

impl Encode for Digest {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(self.as_bytes());
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, TypeError> {
        Ok(Digest::new(d.take_array32()?))
    }
}

impl Encode for Signature {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(self.as_bytes());
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, TypeError> {
        Ok(Signature::from_bytes(d.take_array32()?))
    }
}

impl Encode for crate::ValidatorId {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.put_u16(self.0);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, TypeError> {
        Ok(crate::ValidatorId(d.take_u16()?))
    }
}

impl Encode for crate::Stake {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.put_u64(self.0);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, TypeError> {
        Ok(crate::Stake(d.take_u64()?))
    }
}

impl Encode for crate::Round {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.put_u64(self.0);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, TypeError> {
        Ok(crate::Round(d.take_u64()?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Round, Stake, ValidatorId};

    #[test]
    fn primitive_roundtrips() {
        let bytes = encode_to_vec(&0xDEAD_BEEFu32);
        assert_eq!(decode_from_slice::<u32>(&bytes).unwrap(), 0xDEAD_BEEF);
        let bytes = encode_to_vec(&true);
        assert!(decode_from_slice::<bool>(&bytes).unwrap());
    }

    #[test]
    fn vec_roundtrip() {
        let v: Vec<u16> = vec![1, 2, 3, 65535];
        let back: Vec<u16> = decode_from_slice(&encode_to_vec(&v)).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn option_roundtrip() {
        let some: Option<u64> = Some(9);
        let none: Option<u64> = None;
        assert_eq!(decode_from_slice::<Option<u64>>(&encode_to_vec(&some)).unwrap(), some);
        assert_eq!(decode_from_slice::<Option<u64>>(&encode_to_vec(&none)).unwrap(), none);
    }

    #[test]
    fn tuple_and_newtype_roundtrips() {
        let v = (ValidatorId(7), Stake(100));
        let back: (ValidatorId, Stake) = decode_from_slice(&encode_to_vec(&v)).unwrap();
        assert_eq!(v, back);
        let r = Round(123);
        assert_eq!(decode_from_slice::<Round>(&encode_to_vec(&r)).unwrap(), r);
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = encode_to_vec(&1u8);
        bytes.push(0);
        assert!(decode_from_slice::<u8>(&bytes).is_err());
    }

    #[test]
    fn truncation_rejected() {
        let bytes = encode_to_vec(&1u64);
        assert!(decode_from_slice::<u64>(&bytes[..4]).is_err());
    }

    #[test]
    fn invalid_bool_rejected() {
        assert!(decode_from_slice::<bool>(&[2]).is_err());
    }

    #[test]
    fn invalid_option_tag_rejected() {
        assert!(decode_from_slice::<Option<u8>>(&[9, 0]).is_err());
    }

    #[test]
    fn hostile_length_prefix_rejected() {
        // Claims 2^32-1 elements with a 4-byte body: must error, not OOM.
        let mut bytes = Vec::new();
        bytes.put_u32(u32::MAX);
        bytes.extend_from_slice(&[0, 0, 0, 0]);
        assert!(decode_from_slice::<Vec<u64>>(&bytes).is_err());
    }

    #[test]
    fn encoding_is_deterministic() {
        let v: Vec<(ValidatorId, Stake)> =
            (0..50).map(|i| (ValidatorId(i), Stake(i as u64 + 1))).collect();
        assert_eq!(encode_to_vec(&v), encode_to_vec(&v.clone()));
    }

    #[test]
    fn framed_roundtrip() {
        let v: Vec<(ValidatorId, Stake)> =
            (0..8).map(|i| (ValidatorId(i), Stake(i as u64 + 1))).collect();
        let frame = encode_framed(&v);
        assert_eq!(frame.len(), encode_to_vec(&v).len() + 4);
        let back: Vec<(ValidatorId, Stake)> = decode_framed(&frame).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn framed_rejects_any_single_bit_flip() {
        let v: Vec<u64> = vec![7, 11, 13];
        let frame = encode_framed(&v);
        for i in 0..frame.len() {
            for bit in 0..8 {
                let mut bad = frame.clone();
                bad[i] ^= 1 << bit;
                assert!(
                    decode_framed::<Vec<u64>>(&bad).is_err(),
                    "flip at byte {i} bit {bit} survived"
                );
            }
        }
    }

    #[test]
    fn framed_rejects_truncation_and_empty() {
        let frame = encode_framed(&42u64);
        assert!(decode_framed::<u64>(&frame[..frame.len() - 1]).is_err());
        assert!(decode_framed::<u64>(&[]).is_err());
        assert!(decode_framed::<u64>(&frame[..3]).is_err());
    }
}
