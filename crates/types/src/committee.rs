//! Validator identities, stake, and committees.
//!
//! The paper's model (§2.1): `n` parties, an adversary corrupting parties
//! holding at most `f < n/3` of the stake. Thresholds are stake sums:
//! quorum = `2f + 1`, validity = `f + 1` (with unit stake these are the
//! familiar vertex-count thresholds).

use crate::TypeError;
use hh_crypto::{Keypair, PublicKey};
use std::fmt;

/// Index of a validator within its committee.
///
/// Stable across the whole execution; doubles as the seed for the
/// validator's (simulated) keypair.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct ValidatorId(pub u16);

impl fmt::Display for ValidatorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl ValidatorId {
    /// The validator's position as a `usize`, for indexing score tables.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Voting power. Stake sums use saturating arithmetic; committees small
/// enough to simulate never overflow `u64`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Stake(pub u64);

impl fmt::Display for Stake {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::ops::Add for Stake {
    type Output = Stake;
    fn add(self, rhs: Stake) -> Stake {
        Stake(self.0.saturating_add(rhs.0))
    }
}

impl std::ops::AddAssign for Stake {
    fn add_assign(&mut self, rhs: Stake) {
        *self = *self + rhs;
    }
}

impl std::iter::Sum for Stake {
    fn sum<I: Iterator<Item = Stake>>(iter: I) -> Stake {
        iter.fold(Stake(0), |a, b| a + b)
    }
}

/// Public information about one committee member.
#[derive(Clone, Debug)]
pub struct ValidatorInfo {
    id: ValidatorId,
    stake: Stake,
    public_key: PublicKey,
}

impl ValidatorInfo {
    /// The validator's committee index.
    pub fn id(&self) -> ValidatorId {
        self.id
    }

    /// The validator's voting power.
    pub fn stake(&self) -> Stake {
        self.stake
    }

    /// The validator's verifying key.
    pub fn public_key(&self) -> &PublicKey {
        &self.public_key
    }
}

/// The validator set and its stake-weighted thresholds.
///
/// Construct with [`Committee::new_equal_stake`] for unit-stake committees
/// or [`CommitteeBuilder`] for weighted ones.
///
/// ```
/// use hh_types::{CommitteeBuilder, Stake};
/// let committee = CommitteeBuilder::new()
///     .add(Stake(5))
///     .add(Stake(3))
///     .add(Stake(1))
///     .add(Stake(1))
///     .build()
///     .unwrap();
/// assert_eq!(committee.total_stake(), Stake(10));
/// assert_eq!(committee.max_faulty_stake(), Stake(3)); // f = floor((10-1)/3)
/// assert_eq!(committee.quorum_threshold(), Stake(7)); // 2f+1
/// ```
#[derive(Clone, Debug)]
pub struct Committee {
    validators: Vec<ValidatorInfo>,
    total_stake: Stake,
    f: Stake,
}

impl Committee {
    /// A committee of `n` validators with one unit of stake each.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` (an empty committee is meaningless; the fallible
    /// path is [`CommitteeBuilder::build`]).
    pub fn new_equal_stake(n: usize) -> Self {
        let mut b = CommitteeBuilder::new();
        for _ in 0..n {
            b = b.add(Stake(1));
        }
        b.build().expect("n > 0")
    }

    /// Number of validators.
    pub fn size(&self) -> usize {
        self.validators.len()
    }

    /// Total voting power.
    pub fn total_stake(&self) -> Stake {
        self.total_stake
    }

    /// The maximum stake the adversary may hold: `f = floor((N - 1) / 3)`.
    pub fn max_faulty_stake(&self) -> Stake {
        self.f
    }

    /// Quorum threshold: `⌊2N/3⌋ + 1` stake (equals `2f + 1` when
    /// `N = 3f + 1`). Any two quorums intersect in more than `f` stake, so
    /// in at least one honest validator.
    pub fn quorum_threshold(&self) -> Stake {
        Stake(2 * self.total_stake.0 / 3 + 1)
    }

    /// Validity threshold: `⌈N/3⌉` stake (equals `f + 1` when `N = 3f + 1`).
    /// Any set with this much stake contains at least one honest validator.
    pub fn validity_threshold(&self) -> Stake {
        Stake(self.total_stake.0.div_ceil(3))
    }

    /// Whether `id` is a member.
    pub fn contains(&self, id: ValidatorId) -> bool {
        id.index() < self.validators.len()
    }

    /// Member info, or an error for foreign ids.
    ///
    /// # Errors
    ///
    /// Returns [`TypeError::UnknownValidator`] if `id` is not a member.
    pub fn validator(&self, id: ValidatorId) -> Result<&ValidatorInfo, TypeError> {
        self.validators.get(id.index()).ok_or(TypeError::UnknownValidator(id))
    }

    /// The stake of `id`, or zero for foreign ids (convenient in hot paths
    /// where foreign ids have already been filtered out).
    pub fn stake_of(&self, id: ValidatorId) -> Stake {
        self.validators.get(id.index()).map(|v| v.stake).unwrap_or(Stake(0))
    }

    /// Iterates over members in id order.
    pub fn iter(&self) -> impl Iterator<Item = &ValidatorInfo> {
        self.validators.iter()
    }

    /// All member ids in order.
    pub fn ids(&self) -> impl Iterator<Item = ValidatorId> + '_ {
        self.validators.iter().map(|v| v.id)
    }

    /// Sums the stake of the given validators, counting duplicates once.
    pub fn stake_of_set<I: IntoIterator<Item = ValidatorId>>(&self, ids: I) -> Stake {
        let mut seen = vec![false; self.validators.len()];
        let mut total = Stake(0);
        for id in ids {
            if let Some(slot) = seen.get_mut(id.index()) {
                if !*slot {
                    *slot = true;
                    total += self.stake_of(id);
                }
            }
        }
        total
    }

    /// Whether the given set holds at least quorum (`2f+1`) stake.
    pub fn is_quorum<I: IntoIterator<Item = ValidatorId>>(&self, ids: I) -> bool {
        self.stake_of_set(ids) >= self.quorum_threshold()
    }

    /// Whether the given set holds at least validity (`f+1`) stake.
    pub fn is_validity<I: IntoIterator<Item = ValidatorId>>(&self, ids: I) -> bool {
        self.stake_of_set(ids) >= self.validity_threshold()
    }

    /// The keypair of validator `id`.
    ///
    /// Key material is deterministic (seeded by the id), so any component —
    /// including tests — can reconstruct it. See `hh-crypto` for the
    /// simulation caveat.
    pub fn keypair(&self, id: ValidatorId) -> Keypair {
        Keypair::from_seed(id.0 as u64)
    }
}

/// Incrementally builds a stake-weighted [`Committee`].
#[derive(Debug, Default)]
pub struct CommitteeBuilder {
    stakes: Vec<Stake>,
}

impl CommitteeBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a validator with the given stake; ids are assigned in call order.
    #[must_use]
    #[allow(clippy::should_implement_trait)]
    pub fn add(mut self, stake: Stake) -> Self {
        self.stakes.push(stake);
        self
    }

    /// Finalizes the committee.
    ///
    /// # Errors
    ///
    /// * [`TypeError::EmptyCommittee`] if no validators were added.
    /// * [`TypeError::ZeroStake`] if any validator has zero stake.
    pub fn build(self) -> Result<Committee, TypeError> {
        if self.stakes.is_empty() {
            return Err(TypeError::EmptyCommittee);
        }
        if let Some(pos) = self.stakes.iter().position(|s| s.0 == 0) {
            return Err(TypeError::ZeroStake(ValidatorId(pos as u16)));
        }
        let validators: Vec<ValidatorInfo> = self
            .stakes
            .iter()
            .enumerate()
            .map(|(i, &stake)| {
                let id = ValidatorId(i as u16);
                ValidatorInfo { id, stake, public_key: Keypair::from_seed(id.0 as u64).public() }
            })
            .collect();
        let total_stake: Stake = self.stakes.iter().copied().sum();
        let f = Stake((total_stake.0.saturating_sub(1)) / 3);
        Ok(Committee { validators, total_stake, f })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_stake_thresholds() {
        // Canonical BFT sizes: n = 3f + 1.
        for (n, f) in [(4usize, 1u64), (7, 2), (10, 3), (100, 33)] {
            let c = Committee::new_equal_stake(n);
            assert_eq!(c.max_faulty_stake(), Stake(f), "n={n}");
            assert_eq!(c.quorum_threshold(), Stake(2 * f + 1));
            assert_eq!(c.validity_threshold(), Stake(f + 1));
        }
    }

    #[test]
    fn quorum_intersection_holds() {
        // Two quorums must overlap in > f stake for all sizes we simulate,
        // including sizes that are not of the form 3f + 1.
        for n in 4..=120usize {
            let c = Committee::new_equal_stake(n);
            let q = c.quorum_threshold().0;
            let total = c.total_stake().0;
            assert!(
                2 * q > total + c.max_faulty_stake().0,
                "n={n} q={q} f={}",
                c.max_faulty_stake().0
            );
        }
    }

    #[test]
    fn weighted_stake_thresholds() {
        let c = CommitteeBuilder::new()
            .add(Stake(5))
            .add(Stake(3))
            .add(Stake(1))
            .add(Stake(1))
            .build()
            .unwrap();
        assert_eq!(c.total_stake(), Stake(10));
        assert_eq!(c.max_faulty_stake(), Stake(3));
        // v0 alone (stake 5) is not a quorum; v0+v1 (8) is.
        assert!(!c.is_quorum([ValidatorId(0)]));
        assert!(c.is_quorum([ValidatorId(0), ValidatorId(1)]));
        // v1 alone (stake 3) is not validity (needs 4); v0 alone is.
        assert!(!c.is_validity([ValidatorId(1)]));
        assert!(c.is_validity([ValidatorId(0)]));
    }

    #[test]
    fn duplicate_ids_counted_once() {
        let c = Committee::new_equal_stake(4);
        let dup = [ValidatorId(0), ValidatorId(0), ValidatorId(0)];
        assert_eq!(c.stake_of_set(dup), Stake(1));
        assert!(!c.is_quorum(dup));
    }

    #[test]
    fn empty_committee_rejected() {
        assert!(matches!(CommitteeBuilder::new().build(), Err(TypeError::EmptyCommittee)));
    }

    #[test]
    fn zero_stake_rejected() {
        let err = CommitteeBuilder::new().add(Stake(1)).add(Stake(0)).build().unwrap_err();
        assert!(matches!(err, TypeError::ZeroStake(ValidatorId(1))));
    }

    #[test]
    fn unknown_validator_errors() {
        let c = Committee::new_equal_stake(4);
        assert!(c.validator(ValidatorId(4)).is_err());
        assert_eq!(c.stake_of(ValidatorId(9)), Stake(0));
        assert!(!c.contains(ValidatorId(4)));
    }

    #[test]
    fn keypairs_match_registry() {
        let c = Committee::new_equal_stake(3);
        for v in c.iter() {
            let kp = c.keypair(v.id());
            let sig = kp.sign(b"t", b"m");
            assert!(v.public_key().verify(b"t", b"m", &sig));
        }
    }
}
