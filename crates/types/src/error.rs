//! Error types shared across the workspace.

use crate::{Round, ValidatorId};
use std::fmt;

/// Errors produced when constructing or validating domain types.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TypeError {
    /// A committee must contain at least one validator.
    EmptyCommittee,
    /// Validators must hold positive stake.
    ZeroStake(ValidatorId),
    /// The referenced validator is not a committee member.
    UnknownValidator(ValidatorId),
    /// A vertex failed structural validation.
    InvalidVertex {
        /// The offending vertex's round.
        round: Round,
        /// The offending vertex's author.
        author: ValidatorId,
        /// Human-readable reason.
        reason: &'static str,
    },
    /// A byte buffer could not be decoded.
    Decode(&'static str),
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeError::EmptyCommittee => write!(f, "committee has no validators"),
            TypeError::ZeroStake(id) => write!(f, "validator {id} has zero stake"),
            TypeError::UnknownValidator(id) => write!(f, "validator {id} is not in the committee"),
            TypeError::InvalidVertex { round, author, reason } => {
                write!(f, "invalid vertex (round {round}, author {author}): {reason}")
            }
            TypeError::Decode(reason) => write!(f, "decode error: {reason}"),
        }
    }
}

impl std::error::Error for TypeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase_ish() {
        let errs = [
            TypeError::EmptyCommittee,
            TypeError::ZeroStake(ValidatorId(1)),
            TypeError::UnknownValidator(ValidatorId(2)),
            TypeError::InvalidVertex {
                round: Round(4),
                author: ValidatorId(0),
                reason: "missing parents",
            },
            TypeError::Decode("truncated"),
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(!s.ends_with('.'));
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_bounds<T: std::error::Error + Send + Sync + 'static>() {}
        assert_bounds::<TypeError>();
    }
}
