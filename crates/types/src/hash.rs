//! Pass-through hashing for [`Digest`]-keyed collections.
//!
//! Digests are SHA-256 outputs: already uniformly distributed over
//! 32 bytes. Feeding them through SipHash (std's default) re-mixes
//! entropy that is already perfect and shows up on the DAG hot path,
//! where every vertex insert and every ancestry query does several map
//! lookups. [`DigestHasher`] instead folds the written bytes into a
//! `u64` with xor — for a digest key that means "take 8 of its random
//! bytes", which is exactly as collision-resistant as SipHash on this
//! key distribution while costing a couple of instructions.
//!
//! The hasher is only meant for *content-address* keys (digests,
//! values embedding a digest). It is deliberately not DoS-hardened:
//! an adversary cannot grind SHA-256 preimages to cluster buckets any
//! cheaper than breaking the hash itself, and the maps keyed this way
//! only ever hold validated protocol data.

use hh_crypto::Digest;
use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// A trivial [`Hasher`] for uniformly distributed keys: xor-folds every
/// written word into the state instead of mixing.
#[derive(Clone, Copy, Debug, Default)]
pub struct DigestHasher(u64);

impl Hasher for DigestHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // Fold 8-byte words; a digest contributes its first word intact
        // (length prefixes and shorter fragments xor in harmlessly).
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            self.0 ^= u64::from_le_bytes(word);
        }
    }

    fn write_u8(&mut self, i: u8) {
        self.0 ^= i as u64;
    }

    fn write_u16(&mut self, i: u16) {
        self.0 ^= i as u64;
    }

    fn write_u32(&mut self, i: u32) {
        self.0 ^= i as u64;
    }

    fn write_u64(&mut self, i: u64) {
        self.0 ^= i;
    }

    fn write_usize(&mut self, i: usize) {
        self.0 ^= i as u64;
    }
}

/// `HashMap` keyed by [`Digest`]s (or digest-embedding values) through
/// the pass-through hasher.
pub type DigestMap<K, V> = HashMap<K, V, BuildHasherDefault<DigestHasher>>;

/// `HashSet` of [`Digest`]s through the pass-through hasher.
pub type DigestSet = HashSet<Digest, BuildHasherDefault<DigestHasher>>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::BuildHasher;

    fn hash_of(d: &Digest) -> u64 {
        BuildHasherDefault::<DigestHasher>::default().hash_one(d)
    }

    #[test]
    fn distinct_digests_hash_distinctly() {
        let a = hh_crypto::sha256(b"a");
        let b = hh_crypto::sha256(b"b");
        assert_ne!(hash_of(&a), hash_of(&b));
        assert_eq!(hash_of(&a), hash_of(&a), "stable within a process");
    }

    #[test]
    fn digest_map_round_trips() {
        let mut map: DigestMap<Digest, u64> = DigestMap::default();
        let digests: Vec<Digest> =
            (0..1000u32).map(|i| hh_crypto::sha256(&i.to_be_bytes())).collect();
        for (i, d) in digests.iter().enumerate() {
            map.insert(*d, i as u64);
        }
        assert_eq!(map.len(), 1000);
        for (i, d) in digests.iter().enumerate() {
            assert_eq!(map.get(d), Some(&(i as u64)));
        }
        let mut set = DigestSet::default();
        for d in &digests {
            assert!(set.insert(*d));
        }
        assert!(!set.insert(digests[0]));
    }
}
