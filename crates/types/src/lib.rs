//! Shared domain types for the HammerHead reproduction.
//!
//! This crate defines the vocabulary every other crate speaks:
//!
//! * [`ValidatorId`], [`Stake`], [`Round`] — primitive identifiers;
//! * [`Committee`] — the validator set with stake-weighted quorum
//!   (`2f+1`) and validity (`f+1`) thresholds, exactly as the paper's model
//!   (§2.1) defines them;
//! * [`Transaction`], [`Block`], [`Vertex`] — the data that flows through
//!   the DAG. A [`Vertex`] is the paper's Algorithm 1 `struct vertex`:
//!   a round, a source, a block of transactions, and edges to at least
//!   `n − f` (by stake: quorum) vertices of the previous round;
//! * [`codec`] — a deterministic hand-rolled binary codec used for wire
//!   messages and the storage WAL (see `DESIGN.md` §5 for why no serde);
//! * [`DigestHasher`], [`DigestMap`], [`DigestSet`] — pass-through
//!   hashing for digest-keyed collections on the DAG hot path (digests
//!   are already uniform; re-hashing them through SipHash is pure cost).
//!
//! # Example
//!
//! ```
//! use hh_types::{Committee, ValidatorId};
//!
//! let committee = Committee::new_equal_stake(4);
//! assert_eq!(committee.size(), 4);
//! assert_eq!(committee.total_stake().0, 4);
//! assert_eq!(committee.max_faulty_stake().0, 1);   // f
//! assert_eq!(committee.quorum_threshold().0, 3);   // 2f + 1
//! assert_eq!(committee.validity_threshold().0, 2); // f + 1
//! assert!(committee.contains(ValidatorId(3)));
//! ```

#![deny(rustdoc::broken_intra_doc_links)]

pub mod codec;
mod committee;
mod error;
mod hash;
mod transaction;
mod vertex;

pub use committee::{Committee, CommitteeBuilder, Stake, ValidatorId, ValidatorInfo};
pub use error::TypeError;
pub use hash::{DigestHasher, DigestMap, DigestSet};
pub use transaction::{Transaction, TxId, TX_HEADER_BYTES};
pub use vertex::{Block, Round, Vertex, VertexRef};

pub use hh_crypto::Digest;
