//! Client transactions.
//!
//! The paper's benchmark transactions are "simple increments of a shared
//! counter" submitted by geo-distributed load generators. We model a
//! transaction as an opaque fixed-layout record carrying its origin (which
//! client submitted it, and when) so the harness can compute end-to-end
//! latency, plus a small payload standing in for the counter increment.

use crate::codec::{Decoder, Encode, EncodeExt};
use crate::TypeError;
use std::fmt;

/// Globally unique transaction identifier: `(client, sequence)`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct TxId {
    /// The submitting client (load generator index).
    pub client: u32,
    /// The client-local sequence number.
    pub seq: u64,
}

impl fmt::Display for TxId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tx{}:{}", self.client, self.seq)
    }
}

/// The encoded size of a transaction's fixed header — client id (4),
/// sequence (8), submission timestamp (8) — and thus the wire weight of
/// a payloadless transaction.
pub const TX_HEADER_BYTES: usize = 20;

/// A client transaction as carried in a [`crate::Block`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Transaction {
    /// Identity of the transaction.
    pub id: TxId,
    /// Client submission timestamp, in simulation microseconds. Used by the
    /// metrics pipeline; consensus itself never reads it.
    pub submitted_at: u64,
    /// Modeled payload size in bytes (the counter-increment argument the
    /// paper's benchmark transactions carry, generalized to configurable
    /// sizes by the workload subsystem). This is an *accounting weight*:
    /// proposers bound blocks by [`Transaction::wire_bytes`] and the
    /// metrics pipeline reports byte goodput from it, but the codec —
    /// and therefore vertex digests, signatures and the WAL — carries
    /// only the [`TX_HEADER_BYTES`] header, so the modeled size can
    /// never change a run's chain hashes. A transaction decoded from the
    /// wire or replayed from the WAL reports a zero payload.
    pub payload_bytes: u32,
}

impl Transaction {
    /// Creates a transaction submitted by `client` with sequence `seq` at
    /// time `submitted_at` (µs), with no modeled payload.
    pub fn new(client: u32, seq: u64, submitted_at: u64) -> Self {
        Transaction::with_payload(client, seq, submitted_at, 0)
    }

    /// Creates a transaction carrying `payload_bytes` of modeled payload.
    pub fn with_payload(client: u32, seq: u64, submitted_at: u64, payload_bytes: u32) -> Self {
        Transaction { id: TxId { client, seq }, submitted_at, payload_bytes }
    }

    /// The modeled wire size: fixed header plus payload.
    pub fn wire_bytes(&self) -> usize {
        TX_HEADER_BYTES + self.payload_bytes as usize
    }
}

impl Encode for TxId {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.put_u32(self.client);
        buf.put_u64(self.seq);
    }

    fn decode(d: &mut Decoder<'_>) -> Result<Self, TypeError> {
        Ok(TxId { client: d.take_u32()?, seq: d.take_u64()? })
    }
}

impl Encode for Transaction {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.id.encode(buf);
        buf.put_u64(self.submitted_at);
    }

    fn decode(d: &mut Decoder<'_>) -> Result<Self, TypeError> {
        Ok(Transaction { id: TxId::decode(d)?, submitted_at: d.take_u64()?, payload_bytes: 0 })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{decode_from_slice, encode_to_vec};

    #[test]
    fn tx_roundtrip() {
        let tx = Transaction::new(7, 42, 123_456);
        let bytes = encode_to_vec(&tx);
        let back: Transaction = decode_from_slice(&bytes).unwrap();
        assert_eq!(tx, back);
    }

    #[test]
    fn payload_is_accounting_only_and_never_reaches_the_wire() {
        let plain = Transaction::new(7, 42, 123_456);
        let heavy = Transaction::with_payload(7, 42, 123_456, 4_096);
        assert_eq!(plain.wire_bytes(), TX_HEADER_BYTES);
        assert_eq!(heavy.wire_bytes(), TX_HEADER_BYTES + 4_096);
        // Identical encodings: the modeled payload cannot perturb
        // digests, signatures, or any checked-in scenario's chain hash.
        assert_eq!(encode_to_vec(&plain), encode_to_vec(&heavy));
        assert_eq!(encode_to_vec(&plain).len(), TX_HEADER_BYTES);
        let back: Transaction = decode_from_slice(&encode_to_vec(&heavy)).unwrap();
        assert_eq!(back.payload_bytes, 0, "decode reports no modeled payload");
    }

    #[test]
    fn txid_ordering_groups_by_client() {
        let a = TxId { client: 0, seq: 100 };
        let b = TxId { client: 1, seq: 0 };
        assert!(a < b);
    }

    #[test]
    fn display_forms() {
        assert_eq!(TxId { client: 3, seq: 9 }.to_string(), "tx3:9");
    }
}
