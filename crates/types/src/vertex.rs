//! Rounds, blocks and DAG vertices.
//!
//! A [`Vertex`] is the paper's Algorithm 1 `struct vertex`: the round it
//! belongs to, the party that broadcast it (`source`), a block of
//! transactions, and edges to at least quorum-stake vertices of the previous
//! round. Vertices are content-addressed by a SHA-256 [`Digest`] over their
//! canonical encoding and signed by their author.

use crate::codec::{Decoder, Encode};
use crate::{Transaction, TypeError, ValidatorId};
use hh_crypto::{Digest, Keypair, PublicKey, Sha256, Signature};
use std::fmt;

/// Domain-separation context for vertex signatures.
const VERTEX_CONTEXT: &[u8] = b"hammerhead-vertex-v1";

/// A DAG round number. Round 0 holds the parentless genesis vertices;
/// anchors (leader vertices) live on even rounds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Round(pub u64);

impl Round {
    /// Whether this is an anchor (leader) round.
    pub fn is_even(self) -> bool {
        self.0.is_multiple_of(2)
    }

    /// The next round.
    pub fn next(self) -> Round {
        Round(self.0 + 1)
    }

    /// The previous round; saturates at 0.
    pub fn prev(self) -> Round {
        Round(self.0.saturating_sub(1))
    }
}

impl fmt::Display for Round {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::ops::Add<u64> for Round {
    type Output = Round;
    fn add(self, rhs: u64) -> Round {
        Round(self.0 + rhs)
    }
}

impl std::ops::Sub<u64> for Round {
    type Output = Round;
    fn sub(self, rhs: u64) -> Round {
        Round(self.0.saturating_sub(rhs))
    }
}

/// A block of transactions carried by a vertex.
///
/// The payload is internally reference-counted: vertices are cloned once
/// per broadcast recipient in the simulator, and an `Arc` makes that clone
/// O(1) instead of O(transactions).
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Block {
    transactions: std::sync::Arc<Vec<Transaction>>,
}

impl Block {
    /// An empty block.
    pub fn empty() -> Self {
        Block::default()
    }

    /// Wraps transactions into a block.
    pub fn new(transactions: Vec<Transaction>) -> Self {
        Block { transactions: std::sync::Arc::new(transactions) }
    }

    /// The carried transactions.
    pub fn transactions(&self) -> &[Transaction] {
        &self.transactions
    }

    /// Number of transactions.
    pub fn len(&self) -> usize {
        self.transactions.len()
    }

    /// Whether the block carries no transactions.
    pub fn is_empty(&self) -> bool {
        self.transactions.is_empty()
    }
}

impl Encode for Block {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.transactions.encode(buf);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, TypeError> {
        Ok(Block::new(Vec::<Transaction>::decode(d)?))
    }
}

/// A compact reference to a vertex: `(round, author, digest)`.
///
/// Used in sync requests and as the stable identity of committed anchors.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct VertexRef {
    /// The referenced vertex's round.
    pub round: Round,
    /// The referenced vertex's author.
    pub author: ValidatorId,
    /// The referenced vertex's content digest.
    pub digest: Digest,
}

impl fmt::Display for VertexRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@r{}({})", self.author, self.round, self.digest)
    }
}

impl Encode for VertexRef {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.round.encode(buf);
        self.author.encode(buf);
        self.digest.encode(buf);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, TypeError> {
        Ok(VertexRef {
            round: Round::decode(d)?,
            author: ValidatorId::decode(d)?,
            digest: Digest::decode(d)?,
        })
    }
}

/// A vertex in the DAG (Algorithm 1's `struct vertex`).
///
/// Construction goes through [`Vertex::new`], which computes the content
/// digest and author signature; the fields are immutable afterwards so the
/// digest can never go stale.
///
/// ```
/// use hh_types::{Block, Round, Vertex, ValidatorId};
/// use hh_crypto::Keypair;
///
/// let kp = Keypair::from_seed(0);
/// let genesis = Vertex::new(Round(0), ValidatorId(0), Block::empty(), vec![], &kp);
/// assert!(genesis.verify(&kp.public()));
/// assert_eq!(genesis.parents().len(), 0);
/// ```
#[derive(Debug)]
pub struct Vertex {
    round: Round,
    author: ValidatorId,
    block: Block,
    /// Digests of vertices in `round - 1` this vertex links to (the paper's
    /// `v.edges`). Empty only for round 0. Reference-counted so that the
    /// per-recipient broadcast clone in the simulator is O(1).
    parents: std::sync::Arc<Vec<Digest>>,
    digest: Digest,
    signature: Signature,
    /// Memoized [`Vertex::verify`] outcome. The fields above are immutable
    /// after construction, so a signature check against a given key can
    /// never change — and because broadcast fan-out shares one `Arc`'d
    /// allocation, the first recipient's check warms the cache for every
    /// other recipient. Packing: bits 2.. hold the checked key's
    /// fingerprint (`PublicKey::id() & !0b11`), bits 0..2 the state
    /// (0 = unchecked, 1 = valid, 2 = invalid). A single atomic word keeps
    /// the (fingerprint, state) pair tear-free across threads.
    verify_cache: std::sync::atomic::AtomicU64,
    /// Memoized canonical encoding ([`Vertex::encoded_bytes`]). Like the
    /// verify memo, it is a pure function of the immutable content, and
    /// the shared `Arc` means one recipient's encode (e.g. the first WAL
    /// persist) serves every other holder of the same allocation.
    encoded: std::sync::OnceLock<Vec<u8>>,
}

impl Clone for Vertex {
    fn clone(&self) -> Self {
        Vertex {
            round: self.round,
            author: self.author,
            block: self.block.clone(),
            parents: self.parents.clone(),
            digest: self.digest,
            signature: self.signature,
            // The cache is a pure function of the (immutable) content and
            // the key it was checked against, so the clone may keep it.
            verify_cache: std::sync::atomic::AtomicU64::new(
                self.verify_cache.load(std::sync::atomic::Ordering::Relaxed),
            ),
            // Not carried over: clones are off the hot path (chaos frame
            // materialization, recovery replay) and re-encode lazily.
            encoded: std::sync::OnceLock::new(),
        }
    }
}

/// Equality is content equality; the verify memo is ignored.
impl PartialEq for Vertex {
    fn eq(&self, other: &Self) -> bool {
        self.digest == other.digest && self.signature == other.signature
    }
}
impl Eq for Vertex {}

impl Vertex {
    /// Builds and signs a vertex.
    ///
    /// The digest covers `(round, author, parents, block)`; the signature
    /// covers the digest under the vertex domain-separation context.
    pub fn new(
        round: Round,
        author: ValidatorId,
        block: Block,
        parents: Vec<Digest>,
        keypair: &Keypair,
    ) -> Self {
        let digest = Self::compute_digest(round, author, &block, &parents);
        let signature = keypair.sign(VERTEX_CONTEXT, digest.as_bytes());
        // Deliberately NOT pre-marked valid: `new` signs with whatever
        // keypair it is handed, which tests (and Byzantine actors) exploit
        // to author vertices under the wrong key. `verify` must really
        // check the first time.
        Vertex {
            round,
            author,
            block,
            parents: std::sync::Arc::new(parents),
            digest,
            signature,
            verify_cache: std::sync::atomic::AtomicU64::new(0),
            encoded: std::sync::OnceLock::new(),
        }
    }

    fn compute_digest(
        round: Round,
        author: ValidatorId,
        block: &Block,
        parents: &[Digest],
    ) -> Digest {
        hh_crypto::prof::time_digest(|| Self::compute_digest_inner(round, author, block, parents))
    }

    fn compute_digest_inner(
        round: Round,
        author: ValidatorId,
        block: &Block,
        parents: &[Digest],
    ) -> Digest {
        let mut h = Sha256::new();
        h.update(&round.0.to_be_bytes());
        h.update(&author.0.to_be_bytes());
        h.update(&(parents.len() as u32).to_be_bytes());
        for p in parents {
            h.update(p.as_bytes());
        }
        // The block is hashed via its canonical encoding, so block identity
        // and wire encoding can never diverge. The encoding lands in a
        // reused thread-local buffer: digesting is hot (every construction
        // and every wire decode) and the bytes are identical either way.
        thread_local! {
            static SCRATCH: std::cell::RefCell<Vec<u8>> =
                const { std::cell::RefCell::new(Vec::new()) };
        }
        SCRATCH.with(|scratch| {
            let mut buf = scratch.borrow_mut();
            buf.clear();
            block.encode(&mut buf);
            h.update(&buf);
        });
        h.finalize()
    }

    /// The vertex's round (`v.round`).
    pub fn round(&self) -> Round {
        self.round
    }

    /// The party that broadcast the vertex (`v.source`).
    pub fn author(&self) -> ValidatorId {
        self.author
    }

    /// The carried transaction block (`v.block`).
    pub fn block(&self) -> &Block {
        &self.block
    }

    /// Edges to previous-round vertices (`v.edges`), as digests.
    pub fn parents(&self) -> &[Digest] {
        &self.parents
    }

    /// The content digest.
    pub fn digest(&self) -> Digest {
        self.digest
    }

    /// The author's signature over the digest.
    pub fn signature(&self) -> &Signature {
        &self.signature
    }

    /// A compact reference to this vertex.
    pub fn reference(&self) -> VertexRef {
        VertexRef { round: self.round, author: self.author, digest: self.digest }
    }

    /// The vertex's canonical encoding (identical to what
    /// [`Encode::encode`] writes), computed once and memoized.
    ///
    /// The content is immutable after construction, so the bytes can never
    /// go stale — and since broadcast fan-out shares one `Arc`'d vertex
    /// between all recipients, the first caller (typically the first
    /// validator to WAL-persist the delivery) pays for the encode and
    /// every later persist of the same allocation is a straight copy.
    pub fn encoded_bytes(&self) -> &[u8] {
        self.encoded.get_or_init(|| {
            let mut buf = Vec::new();
            self.encode_fields(&mut buf);
            buf
        })
    }

    /// Whether this vertex links to `parent`.
    pub fn has_parent(&self, parent: &Digest) -> bool {
        self.parents.contains(parent)
    }

    /// Verifies the author signature over the content digest.
    ///
    /// The digest field is private and only ever produced by
    /// [`Vertex::new`] (computed) or the codec's decode path (recomputed
    /// from the transmitted content), so every `Vertex` *value* carries a
    /// digest that matches its content by construction — verification only
    /// needs the signature check. Debug builds re-derive the digest as a
    /// tripwire.
    pub fn verify(&self, author_key: &PublicKey) -> bool {
        debug_assert_eq!(
            Self::compute_digest(self.round, self.author, &self.block, &self.parents),
            self.digest,
            "vertex digest/content invariant broken"
        );
        use std::sync::atomic::Ordering::Relaxed;
        let fingerprint = author_key.id() & !0b11;
        let cached = self.verify_cache.load(Relaxed);
        if cached & !0b11 == fingerprint {
            match cached & 0b11 {
                1 => return true,
                2 => return false,
                _ => {}
            }
        }
        let ok = author_key.verify(VERTEX_CONTEXT, self.digest.as_bytes(), &self.signature);
        self.verify_cache.store(fingerprint | if ok { 1 } else { 2 }, Relaxed);
        ok
    }
}

impl fmt::Display for Vertex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "vertex({}@r{}, {} txs, {} parents)",
            self.author,
            self.round,
            self.block.len(),
            self.parents.len()
        )
    }
}

impl Vertex {
    /// Field-by-field body of [`Encode::encode`], shared with the
    /// [`Vertex::encoded_bytes`] memo so both produce the same bytes.
    fn encode_fields(&self, buf: &mut Vec<u8>) {
        self.round.encode(buf);
        self.author.encode(buf);
        self.block.encode(buf);
        self.parents.encode(buf);
        self.signature.encode(buf);
    }
}

impl Encode for Vertex {
    fn encode(&self, buf: &mut Vec<u8>) {
        // A warm memo turns re-encoding into one memcpy; a cold one goes
        // straight to the fields without paying to populate the cache
        // (only `encoded_bytes` callers are on a path hot enough to care).
        match self.encoded.get() {
            Some(bytes) => buf.extend_from_slice(bytes),
            None => self.encode_fields(buf),
        }
    }

    fn decode(d: &mut Decoder<'_>) -> Result<Self, TypeError> {
        let round = Round::decode(d)?;
        let author = ValidatorId::decode(d)?;
        let block = Block::decode(d)?;
        let parents = Vec::<Digest>::decode(d)?;
        let signature = Signature::decode(d)?;
        // Recompute rather than trust a transmitted digest: this is what
        // lets `verify` skip the recomputation (see there).
        let digest = Self::compute_digest(round, author, &block, &parents);
        Ok(Vertex {
            round,
            author,
            block,
            parents: std::sync::Arc::new(parents),
            digest,
            signature,
            verify_cache: std::sync::atomic::AtomicU64::new(0),
            encoded: std::sync::OnceLock::new(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{decode_from_slice, encode_to_vec};

    fn keypair(id: u16) -> Keypair {
        Keypair::from_seed(id as u64)
    }

    fn sample_vertex() -> Vertex {
        let txs = vec![Transaction::new(0, 1, 10), Transaction::new(1, 2, 20)];
        Vertex::new(
            Round(2),
            ValidatorId(1),
            Block::new(txs),
            vec![hh_crypto::sha256(b"p1"), hh_crypto::sha256(b"p2")],
            &keypair(1),
        )
    }

    #[test]
    fn digest_covers_all_fields() {
        let base = sample_vertex();
        let kp = keypair(1);
        let other_round = Vertex::new(
            Round(4),
            base.author(),
            base.block().clone(),
            base.parents().to_vec(),
            &kp,
        );
        let other_parents =
            Vertex::new(base.round(), base.author(), base.block().clone(), vec![], &kp);
        let other_block =
            Vertex::new(base.round(), base.author(), Block::empty(), base.parents().to_vec(), &kp);
        assert_ne!(base.digest(), other_round.digest());
        assert_ne!(base.digest(), other_parents.digest());
        assert_ne!(base.digest(), other_block.digest());
    }

    #[test]
    fn verify_accepts_authentic_vertex() {
        let v = sample_vertex();
        assert!(v.verify(&keypair(1).public()));
    }

    #[test]
    fn verify_rejects_wrong_author_key() {
        let v = sample_vertex();
        assert!(!v.verify(&keypair(2).public()));
    }

    #[test]
    fn codec_roundtrip_preserves_digest_and_signature() {
        let v = sample_vertex();
        let bytes = encode_to_vec(&v);
        let back: Vertex = decode_from_slice(&bytes).unwrap();
        assert_eq!(v, back);
        assert_eq!(v.digest(), back.digest());
        assert!(back.verify(&keypair(1).public()));
    }

    #[test]
    fn decode_recomputes_digest_over_content() {
        // Corrupt one payload byte: decoding succeeds structurally but the
        // signature no longer matches the recomputed digest.
        let v = sample_vertex();
        let mut bytes = encode_to_vec(&v);
        let idx = bytes.len() - 40; // inside parents/signature region
        bytes[idx] ^= 0xFF;
        if let Ok(corrupted) = decode_from_slice::<Vertex>(&bytes) {
            assert!(!corrupted.verify(&keypair(1).public()));
        }
    }

    #[test]
    fn round_helpers() {
        assert!(Round(0).is_even());
        assert!(!Round(3).is_even());
        assert_eq!(Round(3).next(), Round(4));
        assert_eq!(Round(0).prev(), Round(0));
        assert_eq!(Round(5) - 7, Round(0));
        assert_eq!(Round(5) + 2, Round(7));
    }

    #[test]
    fn reference_matches_fields() {
        let v = sample_vertex();
        let r = v.reference();
        assert_eq!(r.round, v.round());
        assert_eq!(r.author, v.author());
        assert_eq!(r.digest, v.digest());
    }

    #[test]
    fn has_parent() {
        let v = sample_vertex();
        assert!(v.has_parent(&hh_crypto::sha256(b"p1")));
        assert!(!v.has_parent(&hh_crypto::sha256(b"p3")));
    }

    #[test]
    fn block_accessors() {
        let b = Block::new(vec![Transaction::new(0, 0, 0)]);
        assert_eq!(b.len(), 1);
        assert!(!b.is_empty());
        assert!(Block::empty().is_empty());
    }
}
