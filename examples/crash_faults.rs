//! Crash-fault comparison (a miniature Figure 2): run Bullshark and
//! HammerHead on identical 10-validator committees with 3 validators
//! crashed from the start, and compare.
//!
//! ```sh
//! cargo run --release --example crash_faults
//! ```

use hammerhead_repro::hh_sim::{run_experiment, ExperimentConfig, FaultSchedule, SystemKind};

fn main() {
    let committee = 10;
    let faults = 3; // the maximum tolerable for n = 10
    let load = 1_000;

    println!("{committee} validators, {faults} crashed from t=0, {load} tx/s offered\n");
    println!(
        "{:<12} {:>12} {:>10} {:>10} {:>10} {:>9} {:>7}",
        "system", "throughput", "latency", "p95", "timeouts", "commits", "epochs"
    );

    let mut results = Vec::new();
    for system in [SystemKind::Bullshark, SystemKind::Hammerhead] {
        let mut config = ExperimentConfig::paper(system, committee, load);
        config.duration_secs = 45;
        config.warmup_secs = 10;
        config.faults = FaultSchedule::crash_last(committee, faults).expect("faults < committee");
        let r = run_experiment(&config);
        assert!(r.agreement_ok, "total order violated");
        println!(
            "{:<12} {:>9.0} tps {:>9.2}s {:>9.2}s {:>10} {:>9} {:>7}",
            system.label(),
            r.throughput_tps,
            r.latency.mean,
            r.latency.p95,
            r.leader_timeouts,
            r.commits,
            r.schedule_epochs,
        );
        results.push(r);
    }

    let (bullshark, hammerhead) = (&results[0], &results[1]);
    println!(
        "\nHammerHead vs Bullshark under faults: {:.1}x latency reduction, {:+.0}% throughput",
        bullshark.latency.mean / hammerhead.latency.mean.max(1e-9),
        (hammerhead.throughput_tps / bullshark.throughput_tps.max(1e-9) - 1.0) * 100.0,
    );
    println!(
        "(the paper reports up to 2x latency reduction and 25-40% throughput gains; \
         exact factors depend on calibration)"
    );
}
