//! Replay of the §1 Sui mainnet incident at example scale: a healthy
//! committee suddenly has 10% of its validators turn slow (not crashed —
//! just +800 ms on every message), exactly the "less responsive" failure
//! mode the paper opens with.
//!
//! Watch Bullshark's tail latency jump while HammerHead's reputation
//! mechanism rotates the degraded validators out of the leader schedule
//! within one epoch.
//!
//! ```sh
//! cargo run --release --example incident_replay
//! ```

use hammerhead_repro::hh_net::SimTime;
use hammerhead_repro::hh_sim::{
    build_sim, ExperimentConfig, FaultSchedule, LatencySummary, SystemKind,
};

fn window_summary(
    handle: &hammerhead_repro::hh_sim::SimHandle,
    from_us: u64,
    to_us: u64,
) -> LatencySummary {
    let mut latencies = Vec::new();
    for i in 0..handle.n_validators {
        for rec in &handle.validator(i).metrics().exec_records {
            if rec.submitted_at >= from_us && rec.submitted_at < to_us && rec.executed_at <= to_us {
                latencies.push(rec.executed_at - rec.submitted_at);
            }
        }
    }
    LatencySummary::from_micros(latencies)
}

fn main() {
    let committee = 13; // one validator per AWS region
    let degraded = 2;
    let onset_s = 30u64;
    let end_s = 60u64;

    println!(
        "{committee} validators; at t={onset_s}s validators v0,v1 gain +800ms latency \
         (the Aug 29 incident shape)\n"
    );

    for system in [SystemKind::Bullshark, SystemKind::Hammerhead] {
        let mut config = ExperimentConfig::paper(system, committee, 150);
        config.duration_secs = end_s;
        config.warmup_secs = 5;
        config.faults = (0..degraded).fold(FaultSchedule::new(), |faults, v| {
            faults.slowdown_from(v, onset_s * 1_000_000, 800_000)
        });
        let mut handle = build_sim(&config);
        handle.sim.run_until(SimTime::from_secs(end_s));

        let healthy = window_summary(&handle, 5_000_000, onset_s * 1_000_000);
        let incident = window_summary(&handle, onset_s * 1_000_000, end_s * 1_000_000);
        // Per-2s latency sparkline across the whole run.
        let all_records: Vec<_> = (0..handle.n_validators)
            .flat_map(|i| handle.validator(i).metrics().exec_records.clone())
            .collect();
        let series = hammerhead_repro::hh_sim::TimeSeries::from_records(&all_records, 2, end_s);
        println!("{}:", system.label());
        println!(
            "  mean latency / 2s: {}  (incident starts mid-line)",
            hammerhead_repro::hh_sim::TimeSeries::sparkline(&series.mean_latency())
        );
        println!(
            "  healthy window : p50 {:>5.2}s  p95 {:>5.2}s  ({} txs)",
            healthy.p50, healthy.p95, healthy.count
        );
        println!(
            "  incident window: p50 {:>5.2}s  p95 {:>5.2}s  ({} txs)   p95 {:+.0}%",
            incident.p50,
            incident.p95,
            incident.count,
            (incident.p95 / healthy.p95.max(1e-9) - 1.0) * 100.0
        );
        if system == SystemKind::Hammerhead {
            let policy = handle.validator(2).hammerhead_policy().expect("configured");
            if let Some(last) = policy.epoch_history().last() {
                println!(
                    "  last schedule switch excluded {:?} (degraded validators leave the rotation)",
                    last.excluded
                );
            }
        }
        println!();
    }
    println!(
        "paper reference (100 validators, production deployment): Bullshark p50 1.9→2.2s, \
         p95 3.0→4.6s; HammerHead's design goal is a flat incident window."
    );
}
