//! Spin up a real 4-node committee as OS processes on loopback TCP,
//! SIGKILL one validator mid-run, restart it against its WAL, and print
//! the audited report. This is the library form of `hh-cli testnet` /
//! `hh-node testnet`; see `docs/node.md` for the full walkthrough.
//!
//! ```sh
//! cargo run --release --example local_testnet
//! ```

use hammerhead_repro::hh_node::{run_testnet, KillPlan, TestnetOpts};
use std::time::Duration;

fn main() {
    let mut opts = TestnetOpts::new(4);
    opts.duration = Duration::from_secs(12);
    opts.tps = 200.0;
    opts.min_commits = 10;
    opts.min_committed_round = 30;
    // Kill node 1 a third of the way in; leave it dead for two seconds.
    opts.kill = Some(KillPlan {
        victim: 1,
        at: Duration::from_secs(4),
        restart_after: Duration::from_secs(2),
    });

    match run_testnet(&opts) {
        Ok(report) => {
            println!("{}", report.to_json());
            if let Some(v) = &report.victim {
                println!(
                    "victim {} had {} commits when killed, recovered + caught up to {}",
                    v.id, v.commits_at_kill, v.commits_final
                );
            }
            if !report.passed() {
                std::process::exit(1);
            }
        }
        Err(e) => {
            eprintln!("testnet failed to launch: {e}");
            std::process::exit(1);
        }
    }
}
