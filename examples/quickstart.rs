//! Quickstart: run a 7-validator HammerHead committee on the simulated
//! geo network for 20 seconds and watch it commit.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use hammerhead_repro::hh_consensus::SchedulePolicy;
use hammerhead_repro::hh_net::SimTime;
use hammerhead_repro::hh_sim::{build_sim, ExperimentConfig, SystemKind};

fn main() {
    let mut config = ExperimentConfig::paper(SystemKind::Hammerhead, 7, 300);
    config.duration_secs = 20;
    config.warmup_secs = 2;

    println!("committee of {} validators, {} tx/s offered load, geo-distributed", 7, 300);
    let mut handle = build_sim(&config);

    // Drive the simulation in 5-second slices, reporting progress.
    for slice in 1..=4u64 {
        handle.sim.run_until(SimTime::from_secs(slice * 5));
        let v0 = handle.validator(0);
        println!(
            "t={:>2}s  commits={:<4} round={:<4} chain={}",
            slice * 5,
            v0.commit_count(),
            v0.current_round(),
            v0.chain_hash(),
        );
    }

    // Inspect the reputation machinery.
    let v0 = handle.validator(0);
    let policy = v0.hammerhead_policy().expect("hammerhead is configured");
    println!("\nschedule epochs completed: {}", policy.epoch());
    println!("live reputation scores:    {}", policy.scores());
    if let Some(last) = policy.epoch_history().last() {
        println!(
            "last switch at round {}: excluded {:?}, promoted {:?}",
            last.new_initial_round.0, last.excluded, last.promoted
        );
    }

    // Every validator agrees on the committed prefix.
    let reference = handle.validator(0).committed_anchors().to_vec();
    for i in 1..handle.n_validators {
        let other = handle.validator(i).committed_anchors();
        let shared = reference.len().min(other.len());
        assert_eq!(&reference[..shared], &other[..shared], "total order violated");
    }
    println!("\ntotal-order audit across {} validators: OK", handle.n_validators);
}
