//! Schedule explorer: watch HammerHead's reputation machinery epoch by
//! epoch — scores, the B/G swap, and slot ownership — while one validator
//! is crashed and another is chronically slow.
//!
//! ```sh
//! cargo run --release --example schedule_explorer
//! ```

use hammerhead_repro::hh_consensus::SchedulePolicy;
use hammerhead_repro::hh_net::SimTime;
use hammerhead_repro::hh_sim::{build_sim, ExperimentConfig, FaultSchedule, SystemKind};
use hammerhead_repro::hh_types::ValidatorId;

fn main() {
    let committee = 8;
    let mut config = ExperimentConfig::paper(SystemKind::Hammerhead, committee, 200);
    config.duration_secs = 40;
    config.warmup_secs = 2;
    // v7 crashed from the start; v6 slow (+500ms) from t=10s.
    config.faults =
        FaultSchedule::new().crash_from_start([7]).slowdown_from(6, 10_000_000, 500_000);

    println!("8 validators: v7 crashed from t=0, v6 slowed (+500ms) from t=10s\n");
    let mut handle = build_sim(&config);
    handle.sim.run_until(SimTime::from_secs(40));

    let v0 = handle.validator(0);
    let policy = v0.hammerhead_policy().expect("hammerhead configured");

    println!("epoch history ({} switches):", policy.epoch());
    for summary in policy.epoch_history() {
        let scores: Vec<String> =
            summary.final_scores.iter().enumerate().map(|(i, s)| format!("v{i}:{s}")).collect();
        println!(
            "  epoch {:>2} -> switch at round {:>4}: scores [{}]",
            summary.epoch,
            summary.new_initial_round.0,
            scores.join(" ")
        );
        println!("           excluded {:?}  promoted {:?}", summary.excluded, summary.promoted);
    }

    println!("\nfinal slot ownership:");
    let schedule = policy.active_schedule();
    for i in 0..committee {
        let id = ValidatorId(i as u16);
        let slots = schedule.slot_count(id);
        let marker = match i {
            7 => " (crashed)",
            6 => " (slowed)",
            _ => "",
        };
        println!("  v{i}: {slots} slot(s){marker}");
    }

    // The crashed validator must have been swapped out.
    assert_eq!(schedule.slot_count(ValidatorId(7)), 0, "crashed validator still owns leader slots");
    println!("\ncrashed validator v7 owns no leader slots: reputation did its job");
}
