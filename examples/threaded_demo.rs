//! The same validators, on real threads: runs a 4-validator HammerHead
//! committee plus a load generator on the crossbeam-based wall-clock
//! runtime for three real seconds, then prints each node's monitoring
//! report. Every experiment in this repository uses the deterministic
//! simulator; this demo shows the protocol stack is runtime-agnostic.
//!
//! ```sh
//! cargo run --release --example threaded_demo
//! ```

use hammerhead_repro::hammerhead::{monitor, Validator, ValidatorConfig};
use hammerhead_repro::hh_net::{threaded, Duration as SimDuration, LatencyModel, NodeId};
use hammerhead_repro::hh_sim::{Actor, Client};
use hammerhead_repro::hh_types::{Committee, ValidatorId};
use std::time::Duration;

fn main() {
    let committee = Committee::new_equal_stake(4);
    let config = ValidatorConfig {
        min_round_delay_us: 30_000,
        leader_timeout_us: 250_000,
        sync_tick_us: 100_000,
        ..ValidatorConfig::hammerhead()
    };

    let mut actors: Vec<Actor> = (0..4)
        .map(|i| {
            Actor::Validator(
                Box::new(Validator::new(committee.clone(), ValidatorId(i), config.clone(), None)),
                None,
            )
        })
        .collect();
    actors.push(Actor::Client(Client::new(0, NodeId(0), 100.0, 10.0)));

    println!("running 4 validators + 1 client on real threads for 3s ...");
    let finished = threaded::run(
        actors,
        LatencyModel::Constant(SimDuration::from_millis(3)),
        Duration::from_secs(3),
        42,
    );

    for actor in &finished {
        if let Some(v) = actor.as_validator() {
            println!("{}", monitor::status_line(v));
        }
    }

    // Agreement holds on real threads exactly as in the simulator.
    let sequences: Vec<_> = finished
        .iter()
        .filter_map(|a| a.as_validator())
        .map(|v| v.committed_anchors().to_vec())
        .collect();
    let shortest = sequences.iter().map(|s| s.len()).min().unwrap();
    assert!(shortest > 5, "validators committed on the wall clock");
    for s in &sequences[1..] {
        assert_eq!(&sequences[0][..shortest], &s[..shortest], "total order violated");
    }
    println!("\ntotal-order audit across threads: OK ({shortest}+ commits each)");

    println!("\nprometheus gauges for v0:");
    print!("{}", monitor::prometheus_text(finished[0].as_validator().expect("validator")));
}
