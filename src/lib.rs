//! # HammerHead reproduction — workspace root
//!
//! This crate re-exports the workspace's public API and hosts the runnable
//! examples (`examples/`) and cross-crate integration tests (`tests/`).
//!
//! The interesting entry points:
//!
//! * [`hammerhead`] — the paper's contribution: reputation scores, the
//!   schedule-switch rule, the scheduling policy and the full validator.
//! * [`hh_sim`] — run whole committees on the deterministic network
//!   simulator with the paper's measurement methodology.
//! * [`hh_consensus`] — the Bullshark engine and the baseline round-robin
//!   schedule.
//! * [`hh_node`] — the same validator as a real OS process over TCP, and
//!   the local-testnet harness that crash-tests a whole committee.
//!
//! ```
//! use hammerhead_repro::hh_sim::{run_experiment, ExperimentConfig, SystemKind};
//!
//! let config = ExperimentConfig::quick_test(SystemKind::Hammerhead);
//! let result = run_experiment(&config);
//! assert!(result.agreement_ok);
//! ```

#![deny(rustdoc::broken_intra_doc_links)]

pub use hammerhead;
pub use hh_consensus;
pub use hh_crypto;
pub use hh_dag;
pub use hh_net;
pub use hh_node;
pub use hh_rbc;
pub use hh_sim;
pub use hh_storage;
pub use hh_types;
