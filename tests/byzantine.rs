//! Byzantine-behaviour integration tests.
//!
//! The paper's evaluation is crash-fault-only (evaluating BFT protocols
//! under Byzantine faults is an open research question, §5), but the
//! protocol's defences are testable directly: certified broadcast makes
//! per-round equivocation impossible, and the vote-based scoring rule makes
//! vote-withholding self-defeating (§7).

use hammerhead_repro::hh_dag::Dag;
use hammerhead_repro::hh_rbc::{BroadcastMode, Rbc, RbcMessage};
use hammerhead_repro::hh_types::{Block, Committee, Round, Transaction, ValidatorId, Vertex};
use std::sync::Arc;

/// A little message bus between hand-driven RBC instances.
struct Party {
    rbc: Rbc,
    dag: Dag,
}

fn parties(committee: &Committee, mode: BroadcastMode) -> Vec<Party> {
    committee
        .ids()
        .map(|id| Party {
            rbc: Rbc::new(committee.clone(), id, mode),
            dag: Dag::new(committee.clone()),
        })
        .collect()
}

#[test]
fn equivocation_cannot_gather_two_certificates() {
    // Byzantine v0 proposes header A to {v1, v2} and header B to {v3}.
    // Quorum is 3 (n=4): only A can possibly certify, and only if v0
    // itself acks it — B is dead on arrival because v1/v2 acked A first
    // and honest validators ack one header per (round, author).
    let committee = Committee::new_equal_stake(4);
    let mut ps = parties(&committee, BroadcastMode::Certified);

    let kp = committee.keypair(ValidatorId(0));
    let header_a = Vertex::new(Round(0), ValidatorId(0), Block::empty(), vec![], &kp);
    let header_b = Vertex::new(
        Round(0),
        ValidatorId(0),
        Block::new(vec![Transaction::new(6, 6, 6)]),
        vec![],
        &kp,
    );
    assert_ne!(header_a.digest(), header_b.digest());

    let mut acks_a = Vec::new();
    let mut acks_b = Vec::new();
    for (i, header) in [(1usize, &header_a), (2, &header_a), (3, &header_b)] {
        let Party { rbc, dag } = &mut ps[i];
        let fx = rbc.handle(ValidatorId(0), &RbcMessage::Propose(Arc::new(header.clone())), dag);
        for (_, msg) in fx.send {
            match (&msg, header.digest() == header_a.digest()) {
                (RbcMessage::Ack { .. }, true) => acks_a.push(msg),
                (RbcMessage::Ack { .. }, false) => acks_b.push(msg),
                _ => {}
            }
        }
    }
    assert_eq!(acks_a.len(), 2, "A acked by v1, v2");
    assert_eq!(acks_b.len(), 1, "B acked by v3 only");

    // Even with v0's self-acks, B holds at most stake 2 < quorum 3: no
    // certificate for B can ever verify. A certificate over A is possible
    // (stake 3 with v0's self-ack) — at most ONE certified vertex per
    // (round, author) exists, which is the property safety needs.
    use hammerhead_repro::hh_rbc::Certificate;
    use hh_crypto_ack::sign_ack;
    let forged_b = Certificate::new(
        header_b.reference(),
        vec![
            (ValidatorId(0), sign_ack(&committee, 0, &header_b)),
            (ValidatorId(3), sign_ack(&committee, 3, &header_b)),
        ],
    );
    assert!(forged_b.verify(&committee).is_err(), "B must not certify");

    let cert_a = Certificate::new(
        header_a.reference(),
        vec![
            (ValidatorId(0), sign_ack(&committee, 0, &header_a)),
            (ValidatorId(1), sign_ack(&committee, 1, &header_a)),
            (ValidatorId(2), sign_ack(&committee, 2, &header_a)),
        ],
    );
    assert!(cert_a.verify(&committee).is_ok(), "A certifies with quorum");
}

/// Helper producing ack signatures the way honest voters do.
mod hh_crypto_ack {
    use super::*;
    use hammerhead_repro::hh_crypto::Signature;

    pub fn sign_ack(committee: &Committee, id: u16, vertex: &Vertex) -> Signature {
        committee.keypair(ValidatorId(id)).sign(b"hammerhead-ack-v1", vertex.digest().as_bytes())
    }
}

#[test]
fn best_effort_mode_detects_equivocation_and_keeps_first() {
    let committee = Committee::new_equal_stake(4);
    let mut ps = parties(&committee, BroadcastMode::BestEffort);
    let kp = committee.keypair(ValidatorId(0));
    let v1 = Vertex::new(Round(0), ValidatorId(0), Block::empty(), vec![], &kp);
    let v2 = Vertex::new(
        Round(0),
        ValidatorId(0),
        Block::new(vec![Transaction::new(1, 1, 1)]),
        vec![],
        &kp,
    );

    let Party { rbc, dag } = &mut ps[1];
    let fx1 = rbc.handle(ValidatorId(0), &RbcMessage::Vertex(Arc::new(v1.clone())), dag);
    assert_eq!(fx1.delivered.len(), 1);
    let fx2 = rbc.handle(ValidatorId(0), &RbcMessage::Vertex(Arc::new(v2)), dag);
    assert!(fx2.delivered.is_empty(), "second vertex rejected");
    assert_eq!(rbc.equivocation_attempts(), 1);
    assert_eq!(dag.vertex_by_author(Round(0), ValidatorId(0)).unwrap().digest(), v1.digest());
}

#[test]
fn vote_withholder_loses_leader_slots() {
    // End-to-end §7 claim: withholding votes for honest leaders costs the
    // withholder its reputation — the vote-based rule punishes exactly the
    // behaviour Shoal's leader-outcome rule would miss.
    use hammerhead_repro::hammerhead::{HammerheadConfig, HammerheadPolicy};
    use hammerhead_repro::hh_consensus::{Bullshark, SchedulePolicy};
    use hammerhead_repro::hh_dag::testkit::DagBuilder;

    let committee = Committee::new_equal_stake(4);
    let config = HammerheadConfig { period_rounds: 6, ..Default::default() };
    let policy = HammerheadPolicy::new(committee.clone(), config.clone());
    let probe = HammerheadPolicy::new(committee.clone(), config);
    let mut engine = Bullshark::new(committee.clone(), policy);

    // v2 authors vertices but never links to any leader vertex.
    let mut builder = DagBuilder::new(committee.clone());
    builder.extend_full_rounds(1);
    for r in 1..=16u64 {
        let round = Round(r);
        if round.is_even() {
            builder.extend_full_rounds(1);
            continue;
        }
        let leader = probe.leader_at(round - 1);
        if leader == ValidatorId(2) {
            builder.extend_full_rounds(1);
            continue;
        }
        builder.extend_round_custom(&committee.ids().collect::<Vec<_>>(), move |author| {
            if author == ValidatorId(2) {
                Some(vec![leader])
            } else {
                None
            }
        });
    }
    let dag = builder.into_dag();
    for r in 0..=16u64 {
        let mut vs: Vec<_> = dag.round_vertices(Round(r)).cloned().collect();
        vs.sort_by_key(|v| v.author());
        for v in vs {
            engine.process_vertex(&v, &dag);
        }
    }

    let history = engine.policy().epoch_history();
    assert!(!history.is_empty());
    let first = &history[0];
    assert!(
        first.excluded.contains(&ValidatorId(2)),
        "withholder not excluded: {:?} (scores {:?})",
        first.excluded,
        first.final_scores
    );
}
