//! Liveness and Leader Utilization integration tests (Lemmas 3, 4, 6).

use hammerhead_repro::hh_net::SimTime;
use hammerhead_repro::hh_sim::{build_sim, ExperimentConfig, FaultSchedule, SystemKind};
use std::collections::HashSet;

fn skipped_leader_rounds(anchors: &[hammerhead_repro::hh_types::VertexRef]) -> u64 {
    let Some(last) = anchors.last() else { return 0 };
    let committed: HashSet<u64> = anchors.iter().map(|a| a.round.0).collect();
    (0..=last.round.0).step_by(2).filter(|r| !committed.contains(r)).count() as u64
}

#[test]
fn commits_progress_after_gst() {
    // Adversarial network until t=3s. Within a bounded time after GST,
    // every honest validator must keep committing (Lemma 4).
    for system in [SystemKind::Bullshark, SystemKind::Hammerhead] {
        let mut config = ExperimentConfig::quick_test(system);
        config.committee_size = 4;
        config.duration_secs = 10;
        config.gst_secs = 3;
        let mut handle = build_sim(&config);

        handle.sim.run_until(SimTime::from_secs(4));
        let at_gst: Vec<u64> = (0..4).map(|i| handle.validator(i).commit_count()).collect();
        handle.sim.run_until(SimTime::from_secs(10));
        let at_end: Vec<u64> = (0..4).map(|i| handle.validator(i).commit_count()).collect();
        for i in 0..4 {
            assert!(
                at_end[i] > at_gst[i] + 5,
                "{system:?}: validator {i} stalled after GST ({} -> {})",
                at_gst[i],
                at_end[i]
            );
        }
    }
}

#[test]
fn rounds_advance_with_maximum_faults() {
    let mut config = ExperimentConfig::quick_test(SystemKind::Hammerhead);
    config.committee_size = 7;
    config.duration_secs = 8;
    config.faults = FaultSchedule::crash_last(7, 2).expect("2 of 7 is a valid crash spec");
    let mut handle = build_sim(&config);
    handle.sim.run_until(SimTime::from_secs(8));
    for i in 0..5 {
        let round = handle.validator(i).current_round();
        assert!(round.0 > 40, "validator {i} stuck at round {round}");
    }
}

#[test]
fn leader_utilization_bound_holds() {
    // Lemma 6: HammerHead's skipped-leader-round count must not grow with
    // run length (crashed validators leave the schedule and stay out),
    // while the static baseline accumulates skips forever.
    let run = |system: SystemKind, secs: u64| -> u64 {
        let mut config = ExperimentConfig::quick_test(system);
        config.committee_size = 7;
        config.duration_secs = secs;
        config.load_tps = 70;
        config.faults = FaultSchedule::crash_last(7, 2).expect("2 of 7 is a valid crash spec");
        config.hammerhead = hammerhead_repro::hammerhead::HammerheadConfig {
            period_rounds: 6,
            ..Default::default()
        };
        let mut handle = build_sim(&config);
        handle.sim.run_until(SimTime::from_secs(secs));
        let anchors = (0..5)
            .map(|i| handle.validator(i).committed_anchors().to_vec())
            .max_by_key(|a| a.len())
            .unwrap();
        skipped_leader_rounds(&anchors)
    };

    let hh_short = run(SystemKind::Hammerhead, 6);
    let hh_long = run(SystemKind::Hammerhead, 18);
    let bs_short = run(SystemKind::Bullshark, 6);
    let bs_long = run(SystemKind::Bullshark, 18);

    // Baseline grows roughly linearly with duration.
    assert!(bs_long >= bs_short * 2, "baseline skips should accumulate: {bs_short} -> {bs_long}");
    // HammerHead is bounded: tripling the run adds at most a small constant
    // (epoch-boundary effects), far below the baseline's growth.
    assert!(hh_long <= hh_short + 4, "hammerhead skips must plateau: {hh_short} -> {hh_long}");
    assert!(hh_long < bs_long, "hammerhead must skip fewer rounds overall");
}

#[test]
fn crashed_validators_leave_schedule_and_return_on_recovery_of_scores() {
    // After the first epoch with a crashed validator, HammerHead's active
    // schedule must not contain it; healthy validators keep all slots
    // covered (slot conservation).
    let mut config = ExperimentConfig::quick_test(SystemKind::Hammerhead);
    config.committee_size = 5;
    config.duration_secs = 8;
    config.faults = FaultSchedule::crash_last(5, 1).expect("1 of 5 is a valid crash spec");
    config.hammerhead =
        hammerhead_repro::hammerhead::HammerheadConfig { period_rounds: 6, ..Default::default() };
    let mut handle = build_sim(&config);
    handle.sim.run_until(SimTime::from_secs(8));

    let policy = handle.validator(0).hammerhead_policy().unwrap();
    let schedule = policy.active_schedule();
    assert_eq!(
        schedule.slot_count(hammerhead_repro::hh_types::ValidatorId(4)),
        0,
        "crashed validator still scheduled"
    );
    let total: usize =
        (0..5).map(|i| schedule.slot_count(hammerhead_repro::hh_types::ValidatorId(i))).sum();
    assert_eq!(total, 5, "slots must be conserved");
}

#[test]
fn throughput_sustained_under_faults_with_hammerhead() {
    // C3: no visible throughput degradation despite crash faults.
    let mut faultless = ExperimentConfig::quick_test(SystemKind::Hammerhead);
    faultless.committee_size = 7;
    faultless.duration_secs = 10;
    faultless.load_tps = 500;
    let clean = hammerhead_repro::hh_sim::run_experiment(&faultless);

    let mut faulted = faultless.clone();
    faulted.faults = FaultSchedule::crash_last(7, 2).expect("2 of 7 is a valid crash spec");
    let dirty = hammerhead_repro::hh_sim::run_experiment(&faulted);

    assert!(clean.agreement_ok && dirty.agreement_ok);
    assert!(
        dirty.throughput_tps > clean.throughput_tps * 0.85,
        "hammerhead throughput degraded: {} vs {}",
        dirty.throughput_tps,
        clean.throughput_tps
    );
}
