//! End-to-end runs under non-default configurations: certified broadcast,
//! weighted stake, network partitions.

use hammerhead_repro::hammerhead::{Validator, ValidatorConfig};
use hammerhead_repro::hh_net::{
    Duration, FaultPlan, LatencyModel, NetworkConfig, NodeId, PartitionSpec, SimTime, Simulator,
};
use hammerhead_repro::hh_rbc::BroadcastMode;
use hammerhead_repro::hh_sim::{Actor, Client};
use hammerhead_repro::hh_storage::MemBackend;
use hammerhead_repro::hh_types::{Committee, CommitteeBuilder, Stake, ValidatorId};

fn fast_config() -> ValidatorConfig {
    ValidatorConfig {
        min_round_delay_us: 20_000,
        leader_timeout_us: 150_000,
        sync_tick_us: 80_000,
        ..ValidatorConfig::default()
    }
}

fn build_network(
    committee: &Committee,
    config: &ValidatorConfig,
    faults: FaultPlan,
    seed: u64,
) -> Simulator<Actor> {
    let n = committee.size();
    let mut actors: Vec<Actor> = (0..n)
        .map(|i| {
            Actor::Validator(
                Box::new(Validator::<MemBackend>::new(
                    committee.clone(),
                    ValidatorId(i as u16),
                    config.clone(),
                    None,
                )),
                None,
            )
        })
        .collect();
    actors.push(Actor::Client(Client::new(0, NodeId(0), 120.0, 10.0)));
    let net = NetworkConfig {
        latency: LatencyModel::Constant(Duration::from_millis(5)),
        faults,
        ..NetworkConfig::default()
    };
    Simulator::new(actors, net, seed)
}

fn commits(sim: &Simulator<Actor>, i: usize) -> u64 {
    sim.node(NodeId(i)).as_validator().unwrap().commit_count()
}

fn assert_prefix_agreement(sim: &Simulator<Actor>, n: usize) {
    let longest = (0..n)
        .map(|i| sim.node(NodeId(i)).as_validator().unwrap().committed_anchors().to_vec())
        .max_by_key(|a| a.len())
        .unwrap();
    for i in 0..n {
        let anchors = sim.node(NodeId(i)).as_validator().unwrap().committed_anchors();
        assert_eq!(anchors, &longest[..anchors.len()], "validator {i} diverged");
    }
}

#[test]
fn certified_broadcast_mode_commits_end_to_end() {
    // The full Narwhal-style header → acks → certificate path on the DES:
    // one extra round-trip per vertex, but equivocation-proof.
    let committee = Committee::new_equal_stake(4);
    let config = ValidatorConfig { broadcast_mode: BroadcastMode::Certified, ..fast_config() };
    let mut sim = build_network(&committee, &config, FaultPlan::new(), 5);
    sim.run_until(SimTime::from_secs(6));
    for i in 0..4 {
        assert!(commits(&sim, i) > 20, "validator {i}: {} commits", commits(&sim, i));
    }
    assert_prefix_agreement(&sim, 4);
    // Certified transactions flow end to end.
    let recs = sim.node(NodeId(0)).as_validator().unwrap().metrics().exec_records.len();
    assert!(recs > 300, "exec records: {recs}");
}

#[test]
fn certified_mode_survives_crash_faults() {
    let committee = Committee::new_equal_stake(4);
    let config = ValidatorConfig { broadcast_mode: BroadcastMode::Certified, ..fast_config() };
    let faults = FaultPlan::new().crash(NodeId(3), SimTime::ZERO);
    let mut sim = build_network(&committee, &config, faults, 6);
    sim.run_until(SimTime::from_secs(8));
    for i in 0..3 {
        assert!(commits(&sim, i) > 10, "validator {i}");
    }
    assert_prefix_agreement(&sim, 3);
}

#[test]
fn weighted_stake_committee_runs_and_respects_stake() {
    // A whale (stake 5) plus small validators: leader slots are stake-
    // weighted, and quorum math follows stake, not counts.
    let committee = CommitteeBuilder::new()
        .add(Stake(5))
        .add(Stake(2))
        .add(Stake(1))
        .add(Stake(1))
        .add(Stake(1))
        .build()
        .unwrap();
    let config = fast_config();
    let mut sim = build_network(&committee, &config, FaultPlan::new(), 7);
    sim.run_until(SimTime::from_secs(6));
    assert_prefix_agreement(&sim, 5);

    // The whale leads half the slots: count anchors per author.
    let anchors = sim.node(NodeId(0)).as_validator().unwrap().committed_anchors();
    assert!(anchors.len() > 20);
    let whale_anchors = anchors.iter().filter(|a| a.author == ValidatorId(0)).count();
    let share = whale_anchors as f64 / anchors.len() as f64;
    assert!(
        (0.35..0.65).contains(&share),
        "whale share {share:.2} should be near its stake share 0.5"
    );
}

#[test]
fn partition_heals_and_liveness_resumes() {
    // Minority {v3} cut off from {v0,v1,v2} between t=2s and t=4s. The
    // majority side keeps committing (it retains quorum 3 of 4); the
    // minority stalls, then catches up after the heal.
    let committee = Committee::new_equal_stake(4);
    let faults = FaultPlan::new().partition(PartitionSpec {
        group_a: vec![NodeId(0), NodeId(1), NodeId(2)],
        group_b: vec![NodeId(3)],
        from: SimTime::from_secs(2),
        until: SimTime::from_secs(4),
    });
    let mut sim = build_network(&committee, &fast_config(), faults, 8);

    sim.run_until(SimTime::from_secs(4));
    let majority_mid = commits(&sim, 0);
    let minority_mid = commits(&sim, 3);
    assert!(majority_mid > minority_mid, "majority progressed through the partition");

    sim.run_until(SimTime::from_secs(10));
    let majority_end = commits(&sim, 0);
    let minority_end = commits(&sim, 3);
    assert!(majority_end > majority_mid + 10);
    assert!(
        minority_end + 15 >= majority_end,
        "minority failed to catch up: {minority_end} vs {majority_end}"
    );
    assert_prefix_agreement(&sim, 4);
}

#[test]
fn majority_partition_stalls_and_recovers_total_order() {
    // A 2/2 split destroys quorum on both sides: commits stop entirely,
    // then resume after the heal with no divergence — the safety-over-
    // liveness trade every BFT protocol must make.
    let committee = Committee::new_equal_stake(4);
    let faults = FaultPlan::new().partition(PartitionSpec {
        group_a: vec![NodeId(0), NodeId(1)],
        group_b: vec![NodeId(2), NodeId(3)],
        from: SimTime::from_secs(2),
        until: SimTime::from_secs(5),
    });
    let mut sim = build_network(&committee, &fast_config(), faults, 9);

    sim.run_until(SimTime::from_secs(2));
    let before: Vec<u64> = (0..4).map(|i| commits(&sim, i)).collect();
    sim.run_until(SimTime::from_secs(5));
    let during: Vec<u64> = (0..4).map(|i| commits(&sim, i)).collect();
    // No side can commit more than a round or two past the cut.
    for (i, commits_during) in during.iter().enumerate() {
        assert!(
            *commits_during <= before[i] + 3,
            "validator {i} committed through a quorumless partition"
        );
    }
    sim.run_until(SimTime::from_secs(12));
    for (i, commits_during) in during.iter().enumerate() {
        assert!(commits(&sim, i) > commits_during + 10, "validator {i} did not resume");
    }
    assert_prefix_agreement(&sim, 4);
}
