//! Property-based tests (proptest) over cross-crate invariants: codec
//! round-trips, schedule-computation invariants, and commit-sequence
//! agreement under randomized DAG shapes and delivery orders.

use hammerhead_repro::hammerhead::{compute_next_schedule, ReputationScores};
use hammerhead_repro::hh_consensus::{Bullshark, RoundRobinPolicy, SlotSchedule};
use hammerhead_repro::hh_dag::testkit::DagBuilder;
use hammerhead_repro::hh_types::codec::{decode_from_slice, encode_to_vec};
use hammerhead_repro::hh_types::{
    Block, Committee, Round, Stake, Transaction, ValidatorId, Vertex,
};
use proptest::prelude::*;

fn arb_transaction() -> impl Strategy<Value = Transaction> {
    (any::<u32>(), any::<u64>(), any::<u64>())
        .prop_map(|(client, seq, at)| Transaction::new(client, seq, at))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn codec_roundtrip_transactions(txs in proptest::collection::vec(arb_transaction(), 0..64)) {
        let block = Block::new(txs);
        let bytes = encode_to_vec(&block);
        let back: Block = decode_from_slice(&bytes).unwrap();
        prop_assert_eq!(block, back);
    }

    #[test]
    fn codec_roundtrip_vertices(
        txs in proptest::collection::vec(arb_transaction(), 0..32),
        round in 0u64..1000,
        author in 0u16..64,
        n_parents in 0usize..16,
        seed in any::<u64>(),
    ) {
        // Round 0 must be parentless; other rounds get synthetic parents.
        let parents = if round == 0 {
            vec![]
        } else {
            (0..n_parents)
                .map(|i| hammerhead_repro::hh_crypto::sha256(&[seed as u8, i as u8]))
                .collect()
        };
        let kp = hammerhead_repro::hh_crypto::Keypair::from_seed(author as u64);
        let v = Vertex::new(Round(round), ValidatorId(author), Block::new(txs), parents, &kp);
        let back: Vertex = decode_from_slice(&encode_to_vec(&v)).unwrap();
        prop_assert_eq!(v.digest(), back.digest());
        prop_assert!(back.verify(&kp.public()));
    }

    #[test]
    fn schedule_swap_invariants(
        n in 4usize..40,
        raw_scores in proptest::collection::vec(0u64..100, 40),
        bound_frac in 0u64..40,
    ) {
        let committee = Committee::new_equal_stake(n);
        let mut scores = ReputationScores::new(&committee);
        for (i, s) in raw_scores.iter().take(n).enumerate() {
            scores.add(ValidatorId(i as u16), *s);
        }
        let prev = SlotSchedule::permuted(&committee, 5);
        let bound = Stake(bound_frac.min(n as u64));
        let change = compute_next_schedule(&prev, &scores, &committee, bound);

        // Slot count conserved.
        prop_assert_eq!(change.schedule.slots().len(), prev.slots().len());
        // B and G are disjoint and equal-sized.
        prop_assert_eq!(change.excluded.len(), change.promoted.len());
        for e in &change.excluded {
            prop_assert!(!change.promoted.contains(e));
        }
        // Stake bound respected.
        let b_stake: Stake = change.excluded.iter().map(|v| committee.stake_of(*v)).sum();
        prop_assert!(b_stake <= bound);
        // Excluded validators own no slots afterwards (they can only
        // re-enter through a later epoch's G set).
        for e in &change.excluded {
            prop_assert_eq!(change.schedule.slot_count(*e), 0);
        }
        // Untouched validators keep exactly their slots.
        for id in committee.ids() {
            if !change.excluded.contains(&id) && !change.promoted.contains(&id) {
                prop_assert_eq!(change.schedule.slot_count(id), prev.slot_count(id));
            }
        }
        // Determinism.
        let again = compute_next_schedule(&prev, &scores, &committee, bound);
        prop_assert_eq!(change, again);
    }

    #[test]
    fn engines_agree_on_random_dag_shapes(
        seed in any::<u64>(),
        rounds in 6u64..16,
    ) {
        // Build a random-but-valid DAG: each round, every author drops a
        // pseudo-random (sub-f) subset of parent links.
        let n = 7usize;
        let f = 2usize;
        let committee = Committee::new_equal_stake(n);
        let mut builder = DagBuilder::new(committee.clone());
        builder.extend_full_rounds(1);
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state
        };
        for _ in 1..rounds {
            let mut excluded_for: Vec<Vec<ValidatorId>> = Vec::new();
            for _ in 0..n {
                let k = (next() % (f as u64 + 1)) as usize;
                let mut ex = Vec::new();
                while ex.len() < k {
                    let candidate = ValidatorId((next() % n as u64) as u16);
                    if !ex.contains(&candidate) {
                        ex.push(candidate);
                    }
                }
                excluded_for.push(ex);
            }
            let authors: Vec<ValidatorId> = committee.ids().collect();
            builder.extend_round_custom(&authors, move |author| {
                Some(excluded_for[author.index()].clone())
            });
        }
        let dag = builder.into_dag();

        // Engine A: ascending author order. Engine B: descending, and only
        // even rounds trigger (odd-round vertices skipped entirely —
        // they're only reachable through parents anyway).
        let mut ea = Bullshark::new(
            committee.clone(),
            RoundRobinPolicy::new(SlotSchedule::round_robin(&committee)),
        );
        let mut eb = Bullshark::new(
            committee.clone(),
            RoundRobinPolicy::new(SlotSchedule::round_robin(&committee)),
        );
        for r in 0..rounds {
            let mut vs: Vec<_> = dag.round_vertices(Round(r)).cloned().collect();
            vs.sort_by_key(|v| v.author());
            for v in &vs {
                ea.process_vertex(v, &dag);
            }
            vs.reverse();
            for v in &vs {
                eb.process_vertex(v, &dag);
            }
        }
        prop_assert_eq!(ea.chain_hash(), eb.chain_hash());
        prop_assert_eq!(ea.committed_anchors(), eb.committed_anchors());
    }

    #[test]
    fn committed_subdags_partition_history(
        seed in any::<u64>(),
    ) {
        // Whatever the shape, ordering must deliver each vertex exactly
        // once with its complete causal history already delivered.
        let n = 4usize;
        let committee = Committee::new_equal_stake(n);
        let mut builder = DagBuilder::new(committee.clone());
        builder.extend_full_rounds(1);
        let mut state = seed | 1;
        let mut next = move || {
            state = state.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            state
        };
        for _ in 1..12 {
            // Drop at most one parent per author (f = 1).
            let authors: Vec<ValidatorId> = committee.ids().collect();
            let drops: Vec<Option<ValidatorId>> = (0..n)
                .map(|_| {
                    if next() % 3 == 0 {
                        Some(ValidatorId((next() % n as u64) as u16))
                    } else {
                        None
                    }
                })
                .collect();
            builder.extend_round_custom(&authors, move |author| {
                drops[author.index()].map(|d| vec![d])
            });
        }
        let dag = builder.into_dag();
        let mut engine = Bullshark::new(
            committee.clone(),
            RoundRobinPolicy::new(SlotSchedule::round_robin(&committee)),
        );
        let mut delivered = std::collections::HashSet::new();
        for r in 0..12u64 {
            let mut vs: Vec<_> = dag.round_vertices(Round(r)).cloned().collect();
            vs.sort_by_key(|v| v.author());
            for v in vs {
                for sd in engine.process_vertex(&v, &dag) {
                    for u in &sd.vertices {
                        // Parents delivered before children (within or
                        // across sub-DAGs).
                        for p in u.parents() {
                            prop_assert!(delivered.contains(p), "parent missing");
                        }
                        prop_assert!(delivered.insert(u.digest()), "duplicate delivery");
                    }
                }
            }
        }
    }
}
