//! Property tests for the simulator hot path's two load-bearing swaps:
//!
//! * the [`TimingWheel`] event queue must pop in *exactly* the order the
//!   `BinaryHeap<Reverse<(at, seq)>>` it displaced would have — ascending
//!   `at`, FIFO `seq` tie-break — across same-instant bursts, pushes that
//!   straddle wheel-rollover boundaries, and far-future timers that live
//!   in the overflow map;
//! * `Arc` broadcast fan-out must hand every recipient the *same* frame —
//!   one allocation, byte-identical content — rather than per-peer deep
//!   copies.
//!
//! Both properties are what "same seed ⇒ same scenario JSON bytes" rests
//! on, so they are pinned here against brute-force oracles rather than
//! trusted to code review.

use hammerhead_repro::hh_net::wheel::{TimingWheel, WHEEL_SLOTS};
use hammerhead_repro::hh_net::{Context, NetworkConfig, Node, NodeId, SimTime, Simulator};
use proptest::prelude::*;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

/// A push offset (µs ahead of the current deadline), weighted toward the
/// shapes that stress distinct wheel machinery: same-instant bursts and
/// near-term ring traffic, times straddling a rollover boundary (the slot
/// index wraps every `WHEEL_SLOTS` µs), and far-future timers beyond the
/// ring horizon (the overflow `BTreeMap`).
fn arb_offset() -> impl Strategy<Value = u64> {
    let slots = WHEEL_SLOTS as u64;
    // Weighted choice by hand (the offline proptest stand-in has no
    // `prop_oneof!`): 4/11 bursts, 2/11 general ring traffic, 3/11
    // rollover straddles, 2/11 far-future overflow.
    (0u32..11, 0u64..200, 0u64..(2 * slots), (1u64..4, 0u64..5), 1_000_000u64..5_000_000).prop_map(
        move |(sel, burst, general, (k, d), far)| match sel {
            0..=3 => burst,
            4 | 5 => general,
            6..=8 => (k * slots + d).saturating_sub(2),
            _ => far,
        },
    )
}

/// A batch of pushes followed by a deadline advance that drains both
/// queues; interleaving push and pop phases is what exercises cursor
/// movement (a slot being reused for a later time after rollover).
fn arb_script() -> impl Strategy<Value = Vec<(Vec<u64>, u64)>> {
    proptest::collection::vec((proptest::collection::vec(arb_offset(), 0..20), 0u64..70_000), 1..12)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Wheel pop order ≡ heap pop order, element for element, on random
    /// interleaved push/drain schedules.
    #[test]
    fn wheel_pop_order_matches_binary_heap_oracle(script in arb_script()) {
        let mut wheel: TimingWheel<u32> = TimingWheel::new();
        let mut heap: BinaryHeap<Reverse<(u64, u64, u32)>> = BinaryHeap::new();
        let mut seq = 0u64;
        let mut now = 0u64;

        let drain = |wheel: &mut TimingWheel<u32>,
                     heap: &mut BinaryHeap<Reverse<(u64, u64, u32)>>,
                     deadline: u64| {
            loop {
                let expected = match heap.peek() {
                    Some(Reverse(entry)) if entry.0 <= deadline => {
                        let Reverse(entry) = heap.pop().expect("peeked");
                        Some(entry)
                    }
                    _ => None,
                };
                let got = wheel
                    .pop_if_at_most(SimTime(deadline))
                    .map(|(at, s, v)| (at.as_micros(), s, v));
                prop_assert_eq!(got, expected, "divergence at deadline {}", deadline);
                if got.is_none() {
                    return;
                }
            }
        };

        for (pushes, advance) in script {
            for offset in pushes {
                let at = now + offset;
                // The value makes each event distinguishable beyond its
                // key, so a swapped payload can't hide behind a matching
                // `(at, seq)`.
                let value = seq as u32;
                wheel.push(SimTime(at), seq, value);
                heap.push(Reverse((at, seq, value)));
                seq += 1;
            }
            now += advance;
            drain(&mut wheel, &mut heap, now);
        }
        // Final full drain: every queued event, in exact order.
        drain(&mut wheel, &mut heap, u64::MAX);
        prop_assert!(wheel.is_empty());
        prop_assert!(heap.is_empty());
    }
}

/// Node 0 broadcasts one frame at start; every node records what it
/// receives.
struct FanNode {
    payload: Option<Arc<Vec<u8>>>,
    fan_to: usize,
    received: Vec<Arc<Vec<u8>>>,
}

impl Node for FanNode {
    type Message = Arc<Vec<u8>>;

    fn on_start(&mut self, ctx: &mut Context<'_, Self::Message>) {
        if let Some(payload) = self.payload.take() {
            ctx.broadcast_to_first(self.fan_to, payload);
        }
    }

    fn on_message(
        &mut self,
        _from: NodeId,
        msg: Self::Message,
        _ctx: &mut Context<'_, Self::Message>,
    ) {
        self.received.push(msg);
    }

    fn on_timer(&mut self, _token: u64, _ctx: &mut Context<'_, Self::Message>) {}
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Broadcast fan-out delivers the *same allocation* to every peer:
    /// byte-identical frames by construction, zero deep copies.
    #[test]
    fn arc_fan_out_delivers_byte_identical_frames(
        n in 2usize..12,
        payload in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let payload = Arc::new(payload);
        let nodes: Vec<FanNode> = (0..n)
            .map(|i| FanNode {
                payload: (i == 0).then(|| payload.clone()),
                fan_to: n,
                received: Vec::new(),
            })
            .collect();
        let mut sim = Simulator::new(nodes, NetworkConfig::default(), 7);
        sim.run_until(SimTime::from_secs(1));

        for i in 1..n {
            let received = &sim.node(NodeId(i)).received;
            prop_assert_eq!(received.len(), 1, "node {} frame count", i);
            prop_assert_eq!(&*received[0], &*payload, "node {} bytes", i);
            prop_assert!(
                Arc::ptr_eq(&received[0], &payload),
                "node {} got a deep copy instead of the shared frame",
                i
            );
        }
        // The broadcaster does not self-deliver.
        prop_assert!(sim.node(NodeId(0)).received.is_empty());
    }
}
