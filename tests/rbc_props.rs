//! Property tests for the reliable-broadcast layer (Definition 1):
//! Agreement, Integrity and Validity must hold under randomized delivery
//! orders, duplication, and message loss repaired by sync ticks.

use hammerhead_repro::hh_dag::Dag;
use hammerhead_repro::hh_rbc::{BroadcastMode, Rbc, RbcMessage};
use hammerhead_repro::hh_types::{Block, Committee, Round, Transaction, ValidatorId, Vertex};
use proptest::prelude::*;
use std::collections::VecDeque;

struct Net {
    parties: Vec<(Rbc, Dag)>,
    /// In-flight messages: (from, to, msg).
    queue: VecDeque<(ValidatorId, ValidatorId, RbcMessage)>,
    delivered: Vec<Vec<hammerhead_repro::hh_crypto::Digest>>,
}

impl Net {
    fn new(committee: &Committee, mode: BroadcastMode) -> Self {
        let parties: Vec<(Rbc, Dag)> = committee
            .ids()
            .map(|id| (Rbc::new(committee.clone(), id, mode), Dag::new(committee.clone())))
            .collect();
        let n = parties.len();
        Net { parties, queue: VecDeque::new(), delivered: vec![Vec::new(); n] }
    }

    fn n(&self) -> usize {
        self.parties.len()
    }

    fn broadcast_own(&mut self, author: usize, vertex: Vertex) {
        // A real proposer only authors a vertex after locally delivering
        // its ancestry; emulate by flushing the author's inbox first.
        // Everyone else still receives in adversarial order.
        self.deliver_all_to(author);
        let (rbc, dag) = &mut self.parties[author];
        let fx = rbc.broadcast_own(vertex, dag);
        self.absorb(author, fx);
    }

    fn deliver_all_to(&mut self, target: usize) {
        loop {
            let Some(pos) = self.queue.iter().position(|(_, to, _)| to.index() == target) else {
                return;
            };
            let (from, to, msg) = self.queue.remove(pos).expect("in range");
            let (rbc, dag) = &mut self.parties[to.index()];
            let fx = rbc.handle(from, &msg, dag);
            self.absorb(to.index(), fx);
        }
    }

    fn absorb(&mut self, from: usize, fx: hammerhead_repro::hh_rbc::RbcEffects) {
        for v in fx.delivered {
            self.delivered[from].push(v.digest());
        }
        let from_id = ValidatorId(from as u16);
        for (to, msg) in fx.send {
            self.queue.push_back((from_id, to, msg));
        }
        for msg in fx.broadcast {
            for i in 0..self.n() {
                if i != from {
                    self.queue.push_back((from_id, ValidatorId(i as u16), msg.clone()));
                }
            }
        }
    }

    /// Delivers queued messages in an order driven by `rng_steps`; a step
    /// value selects which queued message goes next, possibly duplicating
    /// (lossy links are modelled by ticks re-requesting, so "loss" =
    /// deprioritizing forever is excluded by eventually draining).
    fn run(&mut self, mut pick: impl FnMut(usize) -> usize, duplicate_every: usize) {
        let mut processed = 0usize;
        while let Some(index) = (!self.queue.is_empty()).then(|| pick(self.queue.len())) {
            let (from, to, msg) = self.queue.remove(index).expect("in range");
            processed += 1;
            if duplicate_every != 0 && processed.is_multiple_of(duplicate_every) {
                // Duplicate delivery: Integrity must still hold.
                let (rbc, dag) = &mut self.parties[to.index()];
                let fx = rbc.handle(from, &msg, dag);
                self.absorb(to.index(), fx);
            }
            let (rbc, dag) = &mut self.parties[to.index()];
            let fx = rbc.handle(from, &msg, dag);
            self.absorb(to.index(), fx);
            if processed > 100_000 {
                panic!("runaway message storm");
            }
        }
    }

    /// One maintenance tick everywhere (drives sync retries).
    fn tick_all(&mut self) {
        for i in 0..self.n() {
            let (rbc, dag) = &mut self.parties[i];
            let fx = rbc.tick(dag);
            self.absorb(i, fx);
        }
    }
}

/// Builds `rounds` full rounds of vertices for the committee.
fn build_vertices(committee: &Committee, rounds: u64) -> Vec<Vertex> {
    use hammerhead_repro::hh_dag::testkit::DagBuilder;
    let mut b = DagBuilder::new(committee.clone());
    b.extend_full_rounds(rounds as usize);
    let dag = b.into_dag();
    let mut out: Vec<Vertex> = Vec::new();
    for r in 0..rounds {
        let mut vs: Vec<_> = dag.round_vertices(Round(r)).map(|v| (**v).clone()).collect();
        vs.sort_by_key(|v| v.author());
        out.extend(vs);
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn best_effort_agreement_integrity_validity(
        seed in any::<u64>(),
        rounds in 2u64..6,
        duplicate_every in 0usize..7,
    ) {
        let committee = Committee::new_equal_stake(4);
        let mut net = Net::new(&committee, BroadcastMode::BestEffort);
        let vertices = build_vertices(&committee, rounds);
        let total = vertices.len();

        // Authors broadcast their vertices in causal order.
        for v in vertices {
            net.broadcast_own(v.author().index(), v);
        }

        // Random delivery order from a cheap deterministic stream.
        let mut state = seed | 1;
        let mut next = move |len: usize| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as usize % len
        };
        net.run(&mut next, duplicate_every);
        // A couple of tick rounds repair anything still pending.
        for _ in 0..3 {
            net.tick_all();
            net.run(&mut next, 0);
        }

        for i in 0..net.n() {
            // Validity+Agreement: everyone delivered every vertex.
            prop_assert_eq!(net.delivered[i].len(), total, "party {} delivered {:?}/{}", i, net.delivered[i].len(), total);
            // Integrity: no digest twice.
            let mut sorted = net.delivered[i].clone();
            sorted.sort();
            sorted.dedup();
            prop_assert_eq!(sorted.len(), total, "party {} double-delivered", i);
        }
    }

    #[test]
    fn certified_mode_delivers_everything(
        seed in any::<u64>(),
        rounds in 2u64..5,
    ) {
        let committee = Committee::new_equal_stake(4);
        let mut net = Net::new(&committee, BroadcastMode::Certified);
        let vertices = build_vertices(&committee, rounds);
        let total = vertices.len();
        for v in vertices {
            net.broadcast_own(v.author().index(), v);
        }
        let mut state = seed | 1;
        let mut next = move |len: usize| {
            state = state.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            (state >> 33) as usize % len
        };
        net.run(&mut next, 0);
        for _ in 0..3 {
            net.tick_all();
            net.run(&mut next, 0);
        }
        for i in 0..net.n() {
            prop_assert_eq!(net.delivered[i].len(), total, "party {} delivered {}/{}", i, net.delivered[i].len(), total);
        }
    }
}

#[test]
fn tx_payloads_survive_broadcast() {
    // Sanity outside proptest: payloads arrive bit-identical.
    let committee = Committee::new_equal_stake(4);
    let mut net = Net::new(&committee, BroadcastMode::BestEffort);
    let tx = Transaction::new(3, 9, 1234);
    let v = Vertex::new(
        Round(0),
        ValidatorId(0),
        Block::new(vec![tx]),
        vec![],
        &committee.keypair(ValidatorId(0)),
    );
    let digest = v.digest();
    net.broadcast_own(0, v);
    net.run(|_| 0, 0);
    for i in 1..4 {
        let stored = net.parties[i].1.get(&digest).expect("delivered");
        assert_eq!(stored.block().transactions(), &[tx]);
    }
}
