//! Crash-recovery integration tests: a validator crashes mid-run, loses all
//! volatile state, restarts from its write-ahead log, resyncs, and rejoins
//! consensus — the "production-ready and fully-featured (crash-recovery)"
//! behaviour §4 claims.

use hammerhead_repro::hammerhead::{Validator, ValidatorConfig};
use hammerhead_repro::hh_net::{
    Duration, FaultPlan, LatencyModel, NetworkConfig, NodeId, SimTime, Simulator,
};
use hammerhead_repro::hh_sim::{Actor, Client};
use hammerhead_repro::hh_storage::MemBackend;
use hammerhead_repro::hh_types::{Committee, ValidatorId};

fn fast_config() -> ValidatorConfig {
    ValidatorConfig {
        min_round_delay_us: 20_000,
        leader_timeout_us: 150_000,
        sync_tick_us: 80_000,
        gc_depth: 1_000, // keep history so the rejoiner can sync the gap
        ..ValidatorConfig::default()
    }
}

/// Builds a 4-validator network with persistent backends, one client, and
/// a crash/recovery window for validator 3.
fn build(crash_at: SimTime, recover_at: SimTime) -> (Simulator<Actor>, Vec<MemBackend>) {
    let committee = Committee::new_equal_stake(4);
    let backends: Vec<MemBackend> = (0..4).map(|_| MemBackend::new()).collect();
    let mut actors: Vec<Actor> = (0..4)
        .map(|i| {
            Actor::Validator(
                Box::new(Validator::new(
                    committee.clone(),
                    ValidatorId(i as u16),
                    fast_config(),
                    Some(backends[i].clone()),
                )),
                None,
            )
        })
        .collect();
    actors.push(Actor::Client(Client::new(0, NodeId(0), 150.0, 10.0)));

    let net = NetworkConfig {
        latency: LatencyModel::Constant(Duration::from_millis(5)),
        faults: FaultPlan::new().crash(NodeId(3), crash_at).recover(NodeId(3), recover_at),
        ..NetworkConfig::default()
    };
    (Simulator::new(actors, net, 17), backends)
}

fn commits(sim: &Simulator<Actor>, i: usize) -> u64 {
    sim.node(NodeId(i)).as_validator().unwrap().commit_count()
}

#[test]
fn validator_recovers_and_catches_up() {
    let crash_at = SimTime::from_secs(3);
    let recover_at = SimTime::from_secs(6);
    let (mut sim, _backends) = build(crash_at, recover_at);

    sim.run_until(SimTime::from_secs(3));
    let before_crash = commits(&sim, 3);
    assert!(before_crash > 10, "v3 was committing before the crash");

    // While crashed, the rest keep going.
    sim.run_until(SimTime::from_secs(6));
    assert_eq!(commits(&sim, 3), before_crash, "crashed node is frozen");
    assert!(commits(&sim, 0) > before_crash + 10, "survivors progressed");

    // After recovery, v3 replays its WAL and resyncs the gap.
    sim.run_until(SimTime::from_secs(14));
    let v3 = sim.node(NodeId(3)).as_validator().unwrap();
    assert_eq!(v3.metrics().restarts, 1);
    assert!(!v3.metrics().recovery_divergence, "checkpoint cross-check failed");
    let v0_commits = commits(&sim, 0);
    let v3_commits = commits(&sim, 3);
    assert!(v3_commits + 20 >= v0_commits, "v3 failed to catch up: {v3_commits} vs {v0_commits}");

    // Safety: the recovered node's sequence is a prefix of the leader's.
    let reference = sim.node(NodeId(0)).as_validator().unwrap().committed_anchors();
    let recovered = v3.committed_anchors();
    let shared = reference.len().min(recovered.len());
    assert_eq!(&reference[..shared], &recovered[..shared]);
}

#[test]
fn recovery_preserves_pre_crash_prefix() {
    let crash_at = SimTime::from_secs(3);
    let recover_at = SimTime::from_secs(5);
    let (mut sim, _backends) = build(crash_at, recover_at);

    sim.run_until(SimTime::from_secs(3));
    let pre_crash: Vec<_> =
        sim.node(NodeId(3)).as_validator().unwrap().committed_anchors().to_vec();
    assert!(!pre_crash.is_empty());

    sim.run_until(SimTime::from_secs(10));
    let post: Vec<_> = sim.node(NodeId(3)).as_validator().unwrap().committed_anchors().to_vec();
    assert!(
        post.len() >= pre_crash.len(),
        "recovery lost commits: {} -> {}",
        pre_crash.len(),
        post.len()
    );
    assert_eq!(
        &post[..pre_crash.len()],
        &pre_crash[..],
        "recovered sequence must extend the pre-crash prefix"
    );
}

#[test]
fn repeated_crashes_survive() {
    let committee = Committee::new_equal_stake(4);
    let backends: Vec<MemBackend> = (0..4).map(|_| MemBackend::new()).collect();
    let mut actors: Vec<Actor> = (0..4)
        .map(|i| {
            Actor::Validator(
                Box::new(Validator::new(
                    committee.clone(),
                    ValidatorId(i as u16),
                    fast_config(),
                    Some(backends[i].clone()),
                )),
                None,
            )
        })
        .collect();
    actors.push(Actor::Client(Client::new(0, NodeId(1), 100.0, 10.0)));

    let net = NetworkConfig {
        latency: LatencyModel::Constant(Duration::from_millis(5)),
        faults: FaultPlan::new()
            .crash(NodeId(3), SimTime::from_secs(2))
            .recover(NodeId(3), SimTime::from_secs(4))
            .crash(NodeId(3), SimTime::from_secs(6))
            .recover(NodeId(3), SimTime::from_secs(8)),
        ..NetworkConfig::default()
    };
    let mut sim = Simulator::new(actors, net, 23);
    sim.run_until(SimTime::from_secs(14));

    let v3 = sim.node(NodeId(3)).as_validator().unwrap();
    assert_eq!(v3.metrics().restarts, 2);
    assert!(!v3.metrics().recovery_divergence);
    assert!(commits(&sim, 3) + 30 >= commits(&sim, 0), "double-crashed node caught up");

    let reference = sim.node(NodeId(0)).as_validator().unwrap().committed_anchors();
    let recovered = v3.committed_anchors();
    let shared = reference.len().min(recovered.len());
    assert_eq!(&reference[..shared], &recovered[..shared]);
}

#[test]
fn hammerhead_node_recovers_with_schedule_state() {
    // Recovery rebuilds the HammerHead policy by replaying the committed
    // sequence: epochs and schedules must match the survivors'.
    use hammerhead_repro::hammerhead::{HammerheadConfig, ScheduleConfig};
    use hammerhead_repro::hh_consensus::SchedulePolicy;

    let committee = Committee::new_equal_stake(4);
    let config = ValidatorConfig {
        schedule: ScheduleConfig::Hammerhead(HammerheadConfig {
            period_rounds: 8,
            ..Default::default()
        }),
        ..fast_config()
    };
    let backends: Vec<MemBackend> = (0..4).map(|_| MemBackend::new()).collect();
    let mut actors: Vec<Actor> = (0..4)
        .map(|i| {
            Actor::Validator(
                Box::new(Validator::new(
                    committee.clone(),
                    ValidatorId(i as u16),
                    config.clone(),
                    Some(backends[i].clone()),
                )),
                None,
            )
        })
        .collect();
    actors.push(Actor::Client(Client::new(0, NodeId(0), 100.0, 10.0)));

    let net = NetworkConfig {
        latency: LatencyModel::Constant(Duration::from_millis(5)),
        faults: FaultPlan::new()
            .crash(NodeId(2), SimTime::from_secs(3))
            .recover(NodeId(2), SimTime::from_secs(5)),
        ..NetworkConfig::default()
    };
    let mut sim = Simulator::new(actors, net, 31);
    sim.run_until(SimTime::from_secs(12));

    let survivor = sim.node(NodeId(0)).as_validator().unwrap();
    let recovered = sim.node(NodeId(2)).as_validator().unwrap();
    let se = survivor.hammerhead_policy().unwrap();
    let re = recovered.hammerhead_policy().unwrap();
    assert!(se.epoch() >= 2, "schedules rotated during the test");
    let shared = se.epoch_history().len().min(re.epoch_history().len());
    for e in 0..shared {
        assert_eq!(
            se.epoch_history()[e].new_initial_round,
            re.epoch_history()[e].new_initial_round
        );
        assert_eq!(se.epoch_history()[e].excluded, re.epoch_history()[e].excluded);
    }
}
