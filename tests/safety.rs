//! Safety (Total Order / Proposition 1) integration tests.
//!
//! Every test runs full validator networks on the simulated partially-
//! synchronous network and asserts that all live validators' commit
//! sequences are prefix-consistent — the Byzantine Atomic Broadcast Total
//! Order property, plus Schedule Agreement for the HammerHead runs.

use hammerhead_repro::hh_consensus::SchedulePolicy;
use hammerhead_repro::hh_sim::{
    build_sim, run_experiment, ExperimentConfig, FaultSchedule, SystemKind,
};

/// Prefix-checks anchors across all live validators of a finished run.
fn assert_agreement(handle: &hammerhead_repro::hh_sim::SimHandle, crashed: &[u16]) {
    let live: Vec<usize> =
        (0..handle.n_validators).filter(|i| !crashed.contains(&(*i as u16))).collect();
    let longest = live
        .iter()
        .map(|i| handle.validator(*i).committed_anchors().to_vec())
        .max_by_key(|a| a.len())
        .expect("at least one live validator");
    for &i in &live {
        let anchors = handle.validator(i).committed_anchors();
        assert_eq!(
            anchors,
            &longest[..anchors.len()],
            "validator {i} diverged from the common prefix"
        );
    }
}

#[test]
fn agreement_across_seeds_faultless() {
    for seed in [1u64, 7, 99] {
        for system in [SystemKind::Bullshark, SystemKind::Hammerhead] {
            let mut config = ExperimentConfig::quick_test(system);
            config.seed = seed;
            config.duration_secs = 4;
            let r = run_experiment(&config);
            assert!(r.agreement_ok, "seed {seed} {system:?}");
            assert!(r.commits > 10, "seed {seed} {system:?}: {} commits", r.commits);
        }
    }
}

#[test]
fn agreement_with_maximum_crash_faults() {
    for seed in [3u64, 11] {
        for system in [SystemKind::Bullshark, SystemKind::Hammerhead] {
            let mut config = ExperimentConfig::quick_test(system);
            config.committee_size = 7;
            config.duration_secs = 6;
            config.seed = seed;
            config.faults = FaultSchedule::crash_last(7, 2).expect("2 of 7 is a valid crash spec");
            let r = run_experiment(&config);
            assert!(r.agreement_ok, "seed {seed} {system:?}");
            assert!(r.commits > 0);
        }
    }
}

#[test]
fn agreement_under_pre_gst_adversary() {
    // Heavy adversarial delays and deferrals until GST at t=3s; the run
    // ends at t=8s. Safety must hold throughout, including pre-GST.
    for system in [SystemKind::Bullshark, SystemKind::Hammerhead] {
        let mut config = ExperimentConfig::quick_test(system);
        config.committee_size = 4;
        config.duration_secs = 8;
        config.gst_secs = 3;
        config.load_tps = 100;
        let mut handle = build_sim(&config);
        // Check agreement at several points in time, not just the end.
        for checkpoint_s in [2u64, 4, 6, 8] {
            handle.sim.run_until(hammerhead_repro::hh_net::SimTime::from_secs(checkpoint_s));
            assert_agreement(&handle, &[]);
        }
    }
}

#[test]
fn agreement_with_geo_latency_and_faults() {
    let mut config = ExperimentConfig::paper(SystemKind::Hammerhead, 13, 300);
    config.duration_secs = 20;
    config.warmup_secs = 2;
    config.faults = FaultSchedule::crash_last(13, 4).expect("4 of 13 is a valid crash spec");
    let r = run_experiment(&config);
    assert!(r.agreement_ok);
    assert!(r.schedule_epochs >= 1, "schedule must rotate under faults");
}

#[test]
fn hammerhead_schedule_agreement_across_validators() {
    // Proposition 1 end-to-end: all validators walk through identical
    // schedules even while committing at different times.
    let mut config = ExperimentConfig::quick_test(SystemKind::Hammerhead);
    config.committee_size = 5;
    config.duration_secs = 6;
    let mut handle = build_sim(&config);
    handle.sim.run_until(hammerhead_repro::hh_net::SimTime::from_secs(6));

    // Compare schedule histories on the shared epoch prefix.
    let histories: Vec<_> = (0..5)
        .map(|i| {
            handle
                .validator(i)
                .hammerhead_policy()
                .expect("hammerhead configured")
                .epoch_history()
                .to_vec()
        })
        .collect();
    let min_epochs = histories.iter().map(|h| h.len()).min().unwrap();
    assert!(min_epochs >= 1, "every validator switched at least once");
    #[allow(clippy::needless_range_loop)]
    for epoch in 0..min_epochs {
        for v in 1..5 {
            assert_eq!(
                histories[0][epoch].new_initial_round, histories[v][epoch].new_initial_round,
                "epoch {epoch}: switch rounds diverge"
            );
            assert_eq!(
                histories[0][epoch].excluded, histories[v][epoch].excluded,
                "epoch {epoch}: B sets diverge"
            );
            assert_eq!(
                histories[0][epoch].promoted, histories[v][epoch].promoted,
                "epoch {epoch}: G sets diverge"
            );
            assert_eq!(
                histories[0][epoch].final_scores, histories[v][epoch].final_scores,
                "epoch {epoch}: scores diverge"
            );
        }
    }
    assert_agreement(&handle, &[]);
}

#[test]
fn chaos_free_runs_take_zero_delivery_path_rng_draws() {
    use hammerhead_repro::hh_net::SimTime;
    // The event-queue/fan-out hot path is draw-free by design: with a
    // constant-latency link model, no chaos windows and no pre-GST
    // adversary, routing a frame never touches the PRNG. Event order —
    // and therefore every scenario JSON byte — can then never hinge on
    // a silently added or re-ordered sample; if someone lands a draw on
    // the delivery path, this fails loudly instead.
    let config = ExperimentConfig::quick_test(SystemKind::Hammerhead);
    let mut handle = build_sim(&config);
    handle.sim.run_until(SimTime::from_secs(3));
    let stats = handle.sim.stats();
    assert!(stats.delivered > 0, "run must actually deliver traffic");
    assert_eq!(
        stats.delivery_rng_draws, 0,
        "chaos-free constant-latency runs must take zero delivery-path RNG draws"
    );

    // Control: the geo model draws jitter once per routed frame, so the
    // counter demonstrably counts — the zero above is not vacuous.
    let mut geo = ExperimentConfig::quick_test(SystemKind::Hammerhead);
    geo.geo = true;
    let mut handle = build_sim(&geo);
    handle.sim.run_until(SimTime::from_secs(3));
    assert!(
        handle.sim.stats().delivery_rng_draws > 0,
        "geo-jitter runs must register delivery-path draws"
    );
}

#[test]
fn determinism_full_stack() {
    let mut config = ExperimentConfig::quick_test(SystemKind::Hammerhead);
    config.committee_size = 5;
    config.duration_secs = 5;
    config.faults = FaultSchedule::crash_last(5, 1).expect("1 of 5 is a valid crash spec");
    let a = run_experiment(&config);
    let b = run_experiment(&config);
    assert_eq!(a.chain_hash, b.chain_hash);
    assert_eq!(a.commits, b.commits);
    assert_eq!(a.submitted, b.submitted);
    assert_eq!(a.latency.mean, b.latency.mean);
}

#[test]
fn epoch_histories_match_schedule_policy_state() {
    use hammerhead_repro::hammerhead::{HammerheadConfig, HammerheadPolicy};
    // The policy driven inside the full stack must equal a policy replayed
    // from the committed sequence offline — schedules are a function of
    // the committed prefix only.
    let mut config = ExperimentConfig::quick_test(SystemKind::Hammerhead);
    config.committee_size = 4;
    config.duration_secs = 5;
    let mut handle = build_sim(&config);
    handle.sim.run_until(hammerhead_repro::hh_net::SimTime::from_secs(5));

    let reference = handle.validator(0).hammerhead_policy().unwrap();
    let offline = HammerheadPolicy::new(
        handle.committee.clone(),
        HammerheadConfig { period_rounds: 8, ..HammerheadConfig::default() },
    );
    // Same construction parameters ⇒ same S0.
    assert_eq!(
        offline.active_schedule().slots().len(),
        reference
            .epoch_history()
            .first()
            .map(|_| offline.active_schedule().slots().len())
            .unwrap_or(offline.active_schedule().slots().len())
    );
    assert!(reference.epoch() >= 1);
}
