//! End-to-end test: a real 4-node committee as OS processes over
//! loopback TCP, with a SIGKILL-and-restart crash in the middle.
//!
//! This is the acceptance test for the `hh-node` runtime. It asserts,
//! from one run:
//!
//! * liveness — the committee commits past round 30 while load flows;
//! * participation — every node (including the crash victim) ends with
//!   a non-trivial committed prefix;
//! * durability — the victim recovers its pre-crash commits from its
//!   WAL (`Validator::on_restart`) and then *extends* them by
//!   range-syncing the rounds it missed;
//! * safety — the [`hh_sim::SafetyChecker`] finds zero violations
//!   across all four nodes' committed sub-DAG sequences, which are
//!   re-derived from the on-disk WALs rather than trusted from the
//!   processes;
//! * clean shutdown — every surviving node exits 0 after its stdin
//!   closes, having flushed its WAL.

use hammerhead_repro::hh_node::{run_testnet, KillPlan, TestnetOpts};
use std::time::Duration;

#[test]
fn four_node_committee_survives_kill_and_restart() {
    let mut opts = TestnetOpts::new(4);
    opts.duration = Duration::from_secs(14);
    opts.tps = 200.0;
    opts.min_commits = 10;
    opts.min_committed_round = 30;
    opts.kill = Some(KillPlan {
        victim: 2,
        at: Duration::from_secs(4),
        restart_after: Duration::from_secs(2),
    });

    let report = run_testnet(&opts).expect("testnet setup");
    assert!(
        report.passed(),
        "testnet gates failed: {:?}\nreport: {}",
        report.failures,
        report.to_json()
    );

    // The gates already cover these, but assert the headline claims
    // explicitly so a regression names the broken property.
    assert_eq!(report.safety_violations, 0, "committed prefixes diverged");
    assert!(report.clean_shutdown, "a node failed the graceful stdin-close shutdown");
    let best_round = report.committed_rounds.iter().copied().max().unwrap_or(0);
    assert!(best_round >= 30, "only reached committed round {best_round}");
    for (i, commits) in report.commits.iter().enumerate() {
        assert!(*commits >= 10, "node {i} committed only {commits} sub-DAGs");
    }
    let victim = report.victim.expect("kill plan ran");
    assert!(
        victim.commits_final > victim.commits_at_kill,
        "victim never caught up: {} commits at kill, {} at end",
        victim.commits_at_kill,
        victim.commits_final
    );
}
