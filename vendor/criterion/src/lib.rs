//! Offline stand-in for `criterion` (the subset `hh-bench` uses).
//!
//! Implements benchmark groups, [`Bencher::iter`] / [`Bencher::iter_batched`],
//! throughput annotation and the [`criterion_group!`] / [`criterion_main!`]
//! macros with a simple calibrated wall-clock loop: each benchmark is
//! warmed up, then timed for a fixed budget and reported as ns/iter (plus
//! derived MB/s or Melem/s when a [`Throughput`] is set). No statistics,
//! plots or baselines — good enough to spot order-of-magnitude
//! regressions offline.

#![deny(rustdoc::broken_intra_doc_links)]

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Wall-clock budget spent measuring each benchmark.
const MEASURE_BUDGET: Duration = Duration::from_millis(200);

/// How a benchmark's work scales per iteration, for derived rates.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Batch sizing hint for [`Bencher::iter_batched`] (accepted for API
/// compatibility; batches are always one input per call here).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration setup output.
    SmallInput,
    /// Large per-iteration setup output.
    LargeInput,
    /// Re-run setup for every routine call.
    PerIteration,
}

/// The per-benchmark measurement driver.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` back-to-back until the measurement budget is spent.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warmup + calibration: find an iteration count that fills the budget.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let target =
            (MEASURE_BUDGET.as_nanos() / once.as_nanos().max(1)).clamp(1, 1_000_000) as u64;

        let start = Instant::now();
        for _ in 0..target {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
        self.iters = target;
    }

    /// Times `routine` over fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let input = setup();
        let start = Instant::now();
        black_box(routine(input));
        let once = start.elapsed().max(Duration::from_nanos(1));
        let target = (MEASURE_BUDGET.as_nanos() / once.as_nanos().max(1)).clamp(1, 100_000) as u64;

        let mut total = Duration::ZERO;
        for _ in 0..target {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
        self.iters = target;
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput used to derive rates for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Runs one benchmark and prints its result.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher { iters: 0, elapsed: Duration::ZERO };
        f(&mut bencher);
        let ns_per_iter = if bencher.iters == 0 {
            0.0
        } else {
            bencher.elapsed.as_nanos() as f64 / bencher.iters as f64
        };
        let rate = match (self.throughput, ns_per_iter > 0.0) {
            (Some(Throughput::Bytes(b)), true) => {
                format!("  {:10.1} MB/s", b as f64 / ns_per_iter * 1e9 / 1e6)
            }
            (Some(Throughput::Elements(e)), true) => {
                format!("  {:10.2} Melem/s", e as f64 / ns_per_iter * 1e9 / 1e6)
            }
            _ => String::new(),
        };
        println!(
            "{}/{:<28} {:14.1} ns/iter  ({} iters){}",
            self.name, id, ns_per_iter, bencher.iters, rate
        );
        self
    }

    /// Ends the group (marker for API compatibility).
    pub fn finish(self) {}
}

/// The top-level benchmark context.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), throughput: None, _criterion: self }
    }
}

/// Bundles benchmark functions under one entry point.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_measures_something() {
        let mut b = Bencher { iters: 0, elapsed: Duration::ZERO };
        b.iter(|| 1 + 1);
        assert!(b.iters > 0);
    }

    #[test]
    fn iter_batched_runs_setup_per_call() {
        let mut b = Bencher { iters: 0, elapsed: Duration::ZERO };
        let mut setups = 0u64;
        b.iter_batched(
            || {
                setups += 1;
                vec![0u8; 16]
            },
            |v| v.len(),
            BatchSize::SmallInput,
        );
        assert_eq!(setups, b.iters + 1, "one calibration + one per iter");
    }

    #[test]
    fn group_prints_and_finishes() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("demo");
        g.throughput(Throughput::Bytes(64));
        g.bench_function("noop", |b| b.iter(|| ()));
        g.finish();
    }
}
