//! Offline stand-in for `crossbeam` (the `channel` subset the workspace
//! uses).
//!
//! Re-exports [`std::sync::mpsc`] under crossbeam's module layout. The
//! workspace only needs unbounded MPSC channels with `recv_timeout`,
//! which std provides with an identical surface; crossbeam's extras
//! (select, bounded channels, MPMC receivers) are not implemented.

#![deny(rustdoc::broken_intra_doc_links)]

/// Multi-producer channels (mirrors `crossbeam::channel`).
pub mod channel {
    pub use std::sync::mpsc::{
        Receiver, RecvTimeoutError, SendError, Sender, SyncSender, TrySendError,
    };

    /// Creates an unbounded channel (crossbeam's `unbounded()`, backed by
    /// [`std::sync::mpsc::channel`]).
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }

    /// Creates a bounded channel (crossbeam's `bounded()`, backed by
    /// [`std::sync::mpsc::sync_channel`]). Unlike crossbeam, the sender is
    /// the distinct [`SyncSender`] type — callers that mix bounded and
    /// unbounded endpoints must name the sender type explicitly.
    pub fn bounded<T>(cap: usize) -> (SyncSender<T>, Receiver<T>) {
        std::sync::mpsc::sync_channel(cap)
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, RecvTimeoutError};
    use std::time::Duration;

    #[test]
    fn send_recv_and_timeout() {
        let (tx, rx) = unbounded();
        tx.send(7).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(7));
        assert_eq!(rx.recv_timeout(Duration::from_millis(1)), Err(RecvTimeoutError::Timeout));
        drop(tx);
        assert_eq!(rx.recv_timeout(Duration::from_millis(1)), Err(RecvTimeoutError::Disconnected));
    }

    #[test]
    fn senders_clone() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        std::thread::spawn(move || tx2.send(1).unwrap()).join().unwrap();
        tx.send(2).unwrap();
        let mut got = vec![rx.recv().unwrap(), rx.recv().unwrap()];
        got.sort();
        assert_eq!(got, vec![1, 2]);
    }
}
