//! Offline stand-in for `parking_lot` (the `Mutex` subset the workspace
//! uses).
//!
//! Wraps [`std::sync::Mutex`] behind `parking_lot`'s panic-free API:
//! [`Mutex::lock`] returns the guard directly, recovering from poisoning
//! instead of returning a `Result` (a poisoned lock only means another
//! thread panicked while holding it; the protected data is still
//! accessible).

#![deny(rustdoc::broken_intra_doc_links)]

use std::sync::Mutex as StdMutex;

/// A mutual-exclusion primitive with `parking_lot`'s `lock()` signature.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(StdMutex<T>);

/// The guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex(StdMutex::new(value))
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    ///
    /// Unlike [`std::sync::Mutex::lock`] this never returns an error:
    /// poisoning is ignored, matching `parking_lot`.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn shared_across_threads() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = m.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }
}
