//! Offline stand-in for `proptest` (the subset the workspace's property
//! tests use).
//!
//! Provides the [`proptest!`] macro, [`Strategy`] with [`Strategy::prop_map`],
//! [`any`], integer-range strategies, [`collection::vec`] and the
//! `prop_assert*` macros. Generation is driven by a deterministic
//! per-case RNG, so failures reproduce on re-run; there is **no
//! shrinking** — a failing case panics with the generated inputs left to
//! the assertion message.

#![deny(rustdoc::broken_intra_doc_links)]

use core::ops::{Range, RangeInclusive};

/// Everything the tests import (mirrors `proptest::prelude`).
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, ProptestConfig,
        Strategy,
    };
}

/// Per-test configuration (mirrors `proptest::test_runner::Config`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// The deterministic generator handed to strategies.
///
/// SplitMix64 keyed by the case number: case *k* of a test always sees
/// the same inputs, run to run.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// The generator for case number `case`.
    pub fn for_case(case: u64) -> Self {
        TestRng { state: case.wrapping_mul(0x9E3779B97F4A7C15) ^ 0xD1B54A32D192ED03 }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; 0 when `bound` is 0.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next_u64() % bound
        }
    }
}

/// A recipe for generating values (mirrors `proptest::strategy::Strategy`).
pub trait Strategy {
    /// The type of value generated.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f` (mirrors `prop_map`).
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// Types with a canonical "any value" strategy (mirrors
/// `proptest::arbitrary::Arbitrary`).
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The strategy returned by [`any`].
#[derive(Clone, Copy, Debug, Default)]
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy producing any value of `T` (mirrors `proptest::arbitrary::any`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + rng.below((self.end - self.start) as u64) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span + 1) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Collection strategies (mirrors `proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use core::ops::Range;

    /// Element counts [`vec()`](fn@vec) may generate.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        /// Exclusive upper bound.
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            SizeRange { lo: exact, hi: exact + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    /// The strategy returned by [`vec()`](fn@vec).
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates `Vec`s whose length falls in `size` and whose elements
    /// come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `body` for every generated case.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                for case in 0..config.cases as u64 {
                    let mut rng = $crate::TestRng::for_case(case);
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                    $body
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strat),+) $body
            )*
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn cases_are_deterministic() {
        let mut a = crate::TestRng::for_case(3);
        let mut b = crate::TestRng::for_case(3);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 10u64..20, y in 0usize..5) {
            prop_assert!((10..20).contains(&x));
            prop_assert!(y < 5);
        }

        #[test]
        fn map_and_vec_compose(
            v in crate::collection::vec((0u32..10).prop_map(|x| x * 2), 0..8),
        ) {
            prop_assert!(v.len() < 8);
            for e in v {
                prop_assert_eq!(e % 2, 0);
            }
        }

        #[test]
        fn exact_vec_len(v in crate::collection::vec(any::<u8>(), 7)) {
            prop_assert_eq!(v.len(), 7);
        }
    }
}
