//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the narrow slice of `rand` it actually uses: a seedable,
//! deterministic [`rngs::StdRng`], [`Rng::gen`] for `f64`/`bool`, and
//! [`Rng::gen_range`] over integer ranges. The generator is
//! xoshiro256++ seeded through SplitMix64 — different numbers than the
//! real `rand` crate's ChaCha12-based `StdRng`, but with the same
//! determinism contract: identical seeds produce identical streams.
//!
//! Only what the workspace calls is implemented; this is not a
//! general-purpose RNG library.

#![deny(rustdoc::broken_intra_doc_links)]

use core::ops::{Range, RangeInclusive};

/// Random number generators (mirrors `rand::rngs`).
pub mod rngs {
    pub use crate::StdRng;
}

/// Types that can be created from a `u64` seed (mirrors
/// `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly by [`Rng::gen`] (the `Standard`
/// distribution of the real crate).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges [`Rng::gen_range`] can sample from (the `SampleRange` trait of
/// the real crate).
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_sample_range!(u16, u32, u64, usize);

/// The user-facing generator trait (mirrors `rand::Rng`).
pub trait Rng {
    /// The raw 64-bit output all other samples derive from.
    fn next_u64(&mut self) -> u64;

    /// Samples a value of `T` from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if `range` is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

/// A deterministic xoshiro256++ generator (stand-in for `rand::rngs::StdRng`).
#[derive(Clone, Debug)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // Expand the seed with SplitMix64, per the xoshiro authors'
        // recommendation, so nearby seeds yield unrelated streams.
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        StdRng { s: [next(), next(), next(), next()] }
    }
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..1000 {
            let x = rng.gen_range(5u64..=10);
            assert!((5..=10).contains(&x));
            let y = rng.gen_range(0usize..3);
            assert!(y < 3);
        }
        // Degenerate inclusive range.
        assert_eq!(rng.gen_range(9u64..=9), 9);
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(5);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
